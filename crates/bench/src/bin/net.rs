//! Loopback load generator for the framed TCP transport: requests/sec,
//! latency percentiles, and bytes served through a real socket.
//!
//! Publishes items over the wire, then hammers the [`NetServer`] from N
//! concurrent [`NetClient`]s with a skewed capacity mix. Each timed request
//! is a full `REQUEST` → `TRANSMIT` + chunks exchange including the
//! client-side CRC and structural validation (decode is verified once
//! outside the timed loop). Reports to stdout and `BENCH_net.json`.
//!
//! With `--streaming`, the timed loop additionally drives
//! [`NetClient::fetch_and_decode_streaming`] — the pipelined path that
//! decodes segments while later chunks are still on the wire — and records
//! **time-to-first-segment** beside total latency, plus a buffered
//! comparison column, all written into `BENCH_net.json`.
//!
//! The concurrency phase then holds `--connections` negotiated sockets
//! open (default 1024, mostly idle — each costs the reactor one parked
//! slab slot) while driver threads push pipelined request bursts through
//! the crowd, reporting `concurrent_req_s` plus the rejection/eviction
//! counters.
//!
//! With `--chaos`, a failover-cost phase runs two-node fabrics and
//! seeded-kills the serving node mid-transfer ([`FaultPlan`] via
//! `recoil::fabric`): time-to-first-segment and total latency with the
//! node killed land in `BENCH_net.json` beside an undisturbed two-node
//! baseline, and every failed-over decode is asserted byte-identical.
//!
//! ```sh
//! cargo run --release -p recoil-bench --bin net
//! cargo run --release -p recoil-bench --bin net -- --smoke --streaming --chaos --connections 256  # CI
//! cargo run --release -p recoil-bench --bin net -- --clients 16 --requests 2000
//! cargo run --release -p recoil-bench --bin net -- --connections 4096
//! ```
//!
//! [`FaultPlan`]: recoil::net::FaultPlan

use recoil::net::raw::{read_frame, write_frame, ReadOutcome};
use recoil::net::{ContentRequest, FrameType, Hello, NetClient, NetConfig, NetServer};
use recoil::prelude::*;
use recoil::server::ContentServer;
use recoil::telemetry::{Histogram, HistogramSnapshot, TelemetryLevel};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Capacity mix, most popular first (same device-class skew as the serve
/// bench); the last tier exceeds every item's maximum.
const TIERS: [u64; 8] = [16, 4, 64, 1, 8, 32, 256, 100_000];

struct Args {
    clients: usize,
    requests: usize,
    items: usize,
    bytes: usize,
    max_segments: u64,
    connections: usize,
    smoke: bool,
    streaming: bool,
    trace: bool,
    chaos: bool,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let mut a = Self {
            clients: 8,
            requests: 400,
            items: 3,
            bytes: 1_000_000,
            max_segments: 256,
            connections: 1024,
            smoke: false,
            streaming: false,
            trace: false,
            chaos: false,
        };
        let mut i = 1;
        while i < argv.len() {
            let next = |i: &mut usize| {
                *i += 1;
                argv[*i].parse().expect("numeric argument")
            };
            match argv[i].as_str() {
                "--clients" => a.clients = next(&mut i),
                "--requests" => a.requests = next(&mut i),
                "--items" => a.items = next(&mut i),
                "--bytes" => a.bytes = next(&mut i),
                "--max-segments" => a.max_segments = next(&mut i) as u64,
                "--connections" => a.connections = next(&mut i),
                "--smoke" => a.smoke = true,
                "--streaming" => a.streaming = true,
                "--trace" => a.trace = true,
                "--chaos" => a.chaos = true,
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        if a.smoke {
            a.clients = a.clients.min(4);
            a.requests = a.requests.min(60);
            a.items = a.items.min(2);
            a.bytes = a.bytes.min(200_000);
            a.connections = a.connections.min(256);
        }
        a
    }
}

/// SplitMix-style deterministic generator.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Cumulative 1000 × harmonic weights over [`TIERS`].
const CUMULATIVE: [u64; TIERS.len()] = {
    let mut c = [0u64; TIERS.len()];
    let mut total = 0u64;
    let mut rank = 0;
    while rank < TIERS.len() {
        total += 1000 / (rank as u64 + 1);
        c[rank] = total;
        rank += 1;
    }
    c
};

fn pick_tier(state: &mut u64) -> u64 {
    let draw = next_u64(state) % CUMULATIVE[TIERS.len() - 1];
    let rank = CUMULATIVE.iter().position(|&c| draw < c).unwrap();
    TIERS[rank]
}

fn item_name(i: usize) -> String {
    format!("item{i}")
}

/// Opens a raw connection and completes the HELLO exchange; the concurrency
/// phase drives these byte-by-byte instead of through [`NetClient`] so it
/// can pipeline many requests down one socket.
fn raw_handshake(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write_frame(&mut stream, FrameType::Hello, &Hello::ours().encode()).unwrap();
    match read_frame(&mut stream).unwrap() {
        ReadOutcome::Frame(FrameType::Hello, _) => stream,
        other => panic!("expected HELLO reply, got {other:?}"),
    }
}

/// One pipelined driver: writes `count` REQUEST frames in bursts and reads
/// the `TRANSMIT` + `CHUNK` responses back, returning bytes received.
fn drive_pipelined(addr: SocketAddr, name: &str, count: usize) -> u64 {
    let request_frame = {
        let payload = ContentRequest {
            name: name.to_string(),
            parallel_segments: 1,
        }
        .encode();
        let mut f = Vec::with_capacity(5 + payload.len());
        f.push(FrameType::Request as u8);
        f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        f.extend_from_slice(&payload);
        f
    };
    const BATCH: usize = 64;
    let burst: Vec<u8> = request_frame.repeat(BATCH);
    let mut stream = raw_handshake(addr);
    let mut reader = std::io::BufReader::with_capacity(64 * 1024, stream.try_clone().unwrap());
    let mut received = 0u64;
    let mut done = 0usize;
    while done < count {
        let n = BATCH.min(count - done);
        // The burst is tiny (~30 B per request) and responses coalesce in
        // the server's write buffer, so write-then-read cannot deadlock.
        stream.write_all(&burst[..n * request_frame.len()]).unwrap();
        for _ in 0..n {
            let chunks = match read_frame(&mut reader).unwrap() {
                ReadOutcome::Frame(FrameType::Transmit, payload) => {
                    received += payload.len() as u64;
                    // `chunk_count` is the final u32 of the payload.
                    u32::from_le_bytes(payload[payload.len() - 4..].try_into().unwrap())
                }
                other => panic!("expected TRANSMIT, got {other:?}"),
            };
            for _ in 0..chunks {
                match read_frame(&mut reader).unwrap() {
                    ReadOutcome::Frame(FrameType::Chunk, payload) => {
                        received += payload.len() as u64;
                    }
                    other => panic!("expected CHUNK, got {other:?}"),
                }
            }
        }
        done += n;
    }
    received
}

fn percentile(sorted_nanos: &[u64], p: f64) -> u64 {
    if sorted_nanos.is_empty() {
        return 0;
    }
    let idx = ((sorted_nanos.len() - 1) as f64 * p).round() as usize;
    sorted_nanos[idx]
}

/// Failover-cost phase (`--chaos`): fabric fetches with the serving node
/// seeded-killed mid-transfer, measured against an undisturbed two-node
/// baseline. Every killed fetch is asserted byte-identical — the number
/// reported is the price of surviving, not of degrading.
fn chaos_phase(args: &Args) -> String {
    use recoil::fabric::{FabricRouter, RouterConfig};
    use recoil::net::{FaultPlan, NetClientConfig};

    let iters = if args.smoke { 6 } else { 20 };
    let bytes = args.bytes.min(400_000);
    let data = recoil::data::exponential_bytes(bytes, 90.0, 7);
    let config = EncoderConfig {
        max_segments: args.max_segments,
        ..EncoderConfig::default()
    };
    let node = |fault: Option<FaultPlan>| {
        NetServer::bind(
            Arc::new(ContentServer::new()),
            "127.0.0.1:0",
            NetConfig {
                workers: 2,
                chunk_bytes: 64 * 1024,
                fault_plan: fault,
                ..NetConfig::default()
            },
        )
        .unwrap()
    };
    let router_config = || RouterConfig {
        rebalance_interval: 0,
        client: NetClientConfig {
            retry_budget: 0,
            ..NetClientConfig::default()
        },
        ..RouterConfig::default()
    };
    // A name whose rendezvous primary is node 0 of a two-node fabric, so
    // every run starts its stream on the (potentially faulty) node.
    let pick_name = |router: &FabricRouter| {
        (0..256)
            .map(|k| format!("chaos-{k}"))
            .find(|n| router.primary(n) == 0)
            .expect("some name lands on node 0")
    };

    // Undisturbed baseline: both nodes clean and holding the content.
    let mut base_first = Vec::new();
    let mut base_total = Vec::new();
    let stream_bytes;
    {
        let a = node(None);
        let b = node(None);
        let router = FabricRouter::connect(&[a.addr(), b.addr()], router_config()).unwrap();
        let name = pick_name(&router);
        let ok = NetClient::connect(a.addr())
            .unwrap()
            .publish(&name, &data, &config)
            .unwrap();
        stream_bytes = ok.stream_bytes;
        NetClient::connect(b.addr())
            .unwrap()
            .publish(&name, &data, &config)
            .unwrap();
        for _ in 0..iters {
            let fetched = router.fetch(&name, args.max_segments).unwrap();
            assert_eq!(fetched.data, data);
            assert_eq!(fetched.failovers, 0);
            base_first.push(fetched.first_segment_nanos);
            base_total.push(fetched.total_nanos);
        }
        a.shutdown();
        b.shutdown();
    }

    // Seeded mid-stream kills: node 0 severs every connection at a
    // deterministic offset well inside the bitstream; the router fails
    // over and resumes on node 1.
    let mut fail_first = Vec::new();
    let mut fail_total = Vec::new();
    let (lo, hi) = (stream_bytes / 4, stream_bytes);
    for i in 0..iters {
        let plan = FaultPlan::seeded_kill(0xFA11_0000 + i as u64, lo, hi);
        let killer = node(Some(plan));
        let clean = node(None);
        let router =
            FabricRouter::connect(&[killer.addr(), clean.addr()], router_config()).unwrap();
        let name = pick_name(&router);
        for handle in [&killer, &clean] {
            NetClient::connect(handle.addr())
                .unwrap()
                .publish(&name, &data, &config)
                .unwrap();
        }
        let fetched = router.fetch(&name, args.max_segments).unwrap();
        assert_eq!(fetched.data, data, "failover decode must be byte-identical");
        assert_eq!(fetched.failovers, 1, "seeded cut must land mid-stream");
        fail_first.push(fetched.first_segment_nanos);
        fail_total.push(fetched.total_nanos);
        killer.shutdown();
        clean.shutdown();
    }

    for samples in [
        &mut base_first,
        &mut base_total,
        &mut fail_first,
        &mut fail_total,
    ] {
        samples.sort_unstable();
    }
    println!(
        "chaos: undisturbed ttfs p50 {:.1} us, total p50 {:.1} us; killed mid-stream: \
         ttfs p50 {:.1} us, total p50 {:.1} us (p99 {:.1}) over {} verified failovers",
        percentile(&base_first, 0.50) as f64 / 1e3,
        percentile(&base_total, 0.50) as f64 / 1e3,
        percentile(&fail_first, 0.50) as f64 / 1e3,
        percentile(&fail_total, 0.50) as f64 / 1e3,
        percentile(&fail_total, 0.99) as f64 / 1e3,
        fail_total.len(),
    );
    format!(
        ",\n  \"chaos\": true,\n  \
         \"chaos_iterations\": {},\n  \
         \"undisturbed_ttfs_us_p50\": {:.1},\n  \
         \"undisturbed_total_us_p50\": {:.1},\n  \
         \"undisturbed_total_us_p99\": {:.1},\n  \
         \"failover_ttfs_us_p50\": {:.1},\n  \
         \"failover_total_us_p50\": {:.1},\n  \
         \"failover_total_us_p99\": {:.1},\n  \
         \"failovers_verified\": {}",
        iters,
        percentile(&base_first, 0.50) as f64 / 1e3,
        percentile(&base_total, 0.50) as f64 / 1e3,
        percentile(&base_total, 0.99) as f64 / 1e3,
        percentile(&fail_first, 0.50) as f64 / 1e3,
        percentile(&fail_total, 0.50) as f64 / 1e3,
        percentile(&fail_total, 0.99) as f64 / 1e3,
        fail_total.len(),
    )
}

fn main() {
    let args = Args::parse();
    println!(
        "net bench: {} clients × {} requests over {} items ({} B each, \
         max_segments {}){}",
        args.clients,
        args.requests,
        args.items,
        args.bytes,
        args.max_segments,
        match (args.smoke, args.streaming) {
            (true, true) => " [smoke, streaming]",
            (true, false) => " [smoke]",
            (false, true) => " [streaming]",
            (false, false) => "",
        },
    );

    // Connections are multiplexed on the reactor thread, not pinned to
    // workers, so `workers` only sizes the dispatch pool for publishes and
    // cache misses; `max_connections` must cover the concurrency phase's
    // idle crowd. This server keeps the default chunk size so the headline
    // buffered metrics stay comparable across runs; the streaming phase
    // gets its own server below.
    // The headline server runs with telemetry at `Counters` (or `Trace`
    // under --trace): the latency columns in BENCH_net.json come from its
    // histograms, and the Off-vs-Counters overhead phase below measures
    // what that costs.
    let server = NetServer::bind(
        Arc::new(ContentServer::new()),
        "127.0.0.1:0",
        NetConfig {
            workers: 4,
            max_connections: args.clients + args.connections + 16,
            read_timeout: Duration::from_millis(100),
            telemetry: if args.trace {
                TelemetryLevel::Trace
            } else {
                TelemetryLevel::Counters
            },
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let config = EncoderConfig {
        max_segments: args.max_segments,
        ..EncoderConfig::default()
    };
    let publisher = NetClient::connect(addr).unwrap();
    let datasets: Vec<Vec<u8>> = (0..args.items)
        .map(|i| recoil::data::exponential_bytes(args.bytes, 80.0 + 60.0 * i as f64, i as u64))
        .collect();
    let t0 = Instant::now();
    for (i, data) in datasets.iter().enumerate() {
        // Published over the wire: the server encodes once per item.
        publisher.publish(&item_name(i), data, &config).unwrap();
    }
    println!(
        "published {} items over TCP in {:.2?} (encode-once)",
        args.items,
        t0.elapsed()
    );

    // Correctness outside the timed loop: remote fetch-and-decode is
    // byte-identical at several capacities.
    let mut verified = 0u64;
    for (i, data) in datasets.iter().enumerate() {
        for tier in [1u64, 16, 100_000] {
            assert_eq!(
                &publisher.fetch_and_decode(&item_name(i), tier).unwrap(),
                data
            );
            verified += 1;
        }
    }

    // Timed phase: every request is a full framed transfer + integrity
    // check; per-request latency recorded client-side.
    let t0 = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(args.clients * args.requests);
    let mut bytes_transferred = 0u64;
    // Each client thread also feeds a lock-free telemetry histogram; the
    // merged snapshot yields the telemetry-sourced percentile columns.
    let mut request_hist = HistogramSnapshot::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                s.spawn(move || {
                    let client = NetClient::connect(addr).unwrap();
                    let hist = Histogram::new();
                    let mut rng = 0x5eed ^ ((c as u64) << 32);
                    let mut latencies = Vec::with_capacity(args.requests);
                    let mut bytes = 0u64;
                    for _ in 0..args.requests {
                        let name = item_name(next_u64(&mut rng) as usize % args.items);
                        let tier = pick_tier(&mut rng);
                        let t = Instant::now();
                        let content = client.request(&name, tier).unwrap();
                        let nanos = t.elapsed().as_nanos() as u64;
                        latencies.push(nanos);
                        hist.record(nanos);
                        bytes += content.total_bytes();
                    }
                    (latencies, bytes, hist.snapshot())
                })
            })
            .collect();
        for h in handles {
            let (latencies, bytes, hist) = h.join().unwrap();
            all_latencies.extend(latencies);
            bytes_transferred += bytes;
            request_hist.merge(&hist);
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let total = all_latencies.len();
    let rps = total as f64 / wall;
    all_latencies.sort_unstable();
    let p50 = percentile(&all_latencies, 0.50);
    let p99 = percentile(&all_latencies, 0.99);

    // The main-loop counters are snapshotted *before* the concurrency and
    // streaming phases so every headline JSON column describes the same
    // workload.
    let stats = publisher.stats().unwrap();

    // Concurrency phase: the reactor's claim is that thousands of mostly
    // idle connections cost one parked slab slot each while active traffic
    // stays fast. Hold `--connections` negotiated sockets open, then push
    // pipelined request bursts for a small item through driver threads —
    // request turnover under connection pressure, not bulk transfer (the
    // headline phase above covers that).
    let drivers = 4usize.min(args.connections.max(1));
    let per_driver = if args.smoke { 5_000 } else { 60_000 };
    let tiny_config = EncoderConfig {
        max_segments: 4,
        ..EncoderConfig::default()
    };
    let tiny = recoil::data::exponential_bytes(512, 90.0, 99);
    publisher.publish("tiny", &tiny, &tiny_config).unwrap();
    // Warm the tier cache so the timed loop stays on the loop-inline path.
    assert_eq!(publisher.fetch_and_decode("tiny", 1).unwrap(), tiny);

    let idle: Vec<TcpStream> = (0..args.connections.saturating_sub(drivers))
        .map(|_| raw_handshake(addr))
        .collect();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..drivers)
            .map(|_| s.spawn(move || drive_pipelined(addr, "tiny", per_driver)))
            .collect();
        assert!(
            server.active_connections() >= idle.len(),
            "the idle crowd must stay connected during the timed phase"
        );
        for h in handles {
            h.join().unwrap();
        }
    });
    let concurrent_wall = t0.elapsed().as_secs_f64();
    let concurrent_requests = drivers * per_driver;
    let concurrent_rps = concurrent_requests as f64 / concurrent_wall;
    let after = publisher.stats().unwrap();
    println!(
        "concurrency: {} connections held open, {concurrent_requests} pipelined requests \
         on {drivers} drivers in {concurrent_wall:.3}s => {concurrent_rps:.0} req/s \
         ({} rejected, {} evicted)",
        idle.len() + drivers,
        after.stats.rejected_connections,
        after.stats.evicted_connections,
    );
    assert_eq!(
        after.stats.rejected_connections, 0,
        "the connection cap must cover the benchmark's own crowd"
    );
    assert_eq!(
        after.stats.evicted_connections, 0,
        "idle-between-frames peers must never be evicted"
    );
    let idle_held = idle.len();
    drop(idle);

    // Telemetry overhead phase: the same pipelined cache-hit workload
    // against two fresh single-purpose servers — one with telemetry Off,
    // one at Counters — so the JSON records what the instruments cost on
    // the hottest path (the inline-served request). Both servers stay up
    // for the whole phase and the runs alternate Off/Counters, so host
    // drift (this box swings tens of percent between back-to-back runs)
    // lands on both sides instead of biasing one.
    // ~100 ms per rep in the full run, 31 reps: many short paired reps
    // resolve the median far tighter than a few long ones on a shared
    // host, where each rep carries a few percent of scheduler noise.
    let overhead_reqs = if args.smoke { 10_000 } else { 100_000 };
    let overhead_reps = if args.smoke { 3 } else { 31 };
    let mut overhead_rps = [0f64; 2];
    let overhead_servers: Vec<_> = [TelemetryLevel::Off, TelemetryLevel::Counters]
        .into_iter()
        .map(|level| {
            let srv = NetServer::bind(
                Arc::new(ContentServer::new()),
                "127.0.0.1:0",
                NetConfig {
                    workers: 2,
                    read_timeout: Duration::from_millis(100),
                    telemetry: level,
                    ..NetConfig::default()
                },
            )
            .unwrap();
            let cl = NetClient::connect(srv.addr()).unwrap();
            cl.publish("tiny", &tiny, &tiny_config).unwrap();
            assert_eq!(cl.fetch_and_decode("tiny", 1).unwrap(), tiny);
            srv
        })
        .collect();
    // This host's throughput drifts in multi-second epochs (VM steal,
    // frequency ramps), so comparing a best-of-Off against a best-of-
    // Counters taken at different moments is meaningless. Instead each
    // rep measures the two levels back to back — inside one epoch — and
    // the reported overhead is the MEDIAN of the per-rep Off/Counters
    // ratios, which cancels the drift. The order within a rep alternates
    // so a slot-position effect cannot bias one side either.
    let mut rep_ratios = Vec::with_capacity(overhead_reps);
    for rep in 0..overhead_reps {
        let order: [usize; 2] = if rep % 2 == 0 { [0, 1] } else { [1, 0] };
        let mut rep_rps = [0f64; 2];
        for slot in order {
            let t0 = Instant::now();
            drive_pipelined(overhead_servers[slot].addr(), "tiny", overhead_reqs);
            let rps = overhead_reqs as f64 / t0.elapsed().as_secs_f64();
            rep_rps[slot] = rps;
            overhead_rps[slot] = overhead_rps[slot].max(rps);
        }
        rep_ratios.push(rep_rps[0] / rep_rps[1]);
    }
    for srv in overhead_servers {
        srv.shutdown();
    }
    rep_ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead_pct = (rep_ratios[rep_ratios.len() / 2] - 1.0) * 100.0;
    println!(
        "telemetry overhead: Off {:.0} req/s vs Counters {:.0} req/s (best each); \
         median paired overhead {overhead_pct:+.2}% over {overhead_reps} reps",
        overhead_rps[0], overhead_rps[1],
    );

    // Streaming phase: its own server (so the small split-aligned chunks
    // it needs never skew the headline metrics above), alternating
    // pipelined and buffered fetches of the same items at a segment-rich
    // tier, recording time-to-first-segment and total latency for the
    // pipeline beside the buffered transfer time.
    let mut stream_first: Vec<u64> = Vec::new();
    let mut stream_total: Vec<u64> = Vec::new();
    let mut buffered_transfer: Vec<u64> = Vec::new();
    let mut buffered_total: Vec<u64> = Vec::new();
    let mut stream_chunks = 0u64;
    // Kept separate from `verified`, so the headline `verified_decodes`
    // column is identical with and without --streaming.
    let mut streaming_verified = 0u64;
    let mut stream_server = None;
    if args.streaming {
        let rounds = (args.clients * args.requests).clamp(20, 200);
        let tier = args.max_segments.min(64);
        // Many split-aligned chunks per transfer — that is what the
        // pipeline overlaps.
        let srv = NetServer::bind(
            Arc::new(ContentServer::new()),
            "127.0.0.1:0",
            NetConfig {
                workers: 3,
                read_timeout: Duration::from_millis(100),
                chunk_bytes: (args.bytes / 64).max(2 * 1024),
                ..NetConfig::default()
            },
        )
        .unwrap();
        // A tight in-flight budget keeps the pipeline responsive even on a
        // single core: the receive loop hands off to the decoder every
        // couple of chunks instead of buffering a long backlog first.
        let client = NetClient::connect_with(
            srv.addr(),
            recoil::net::NetClientConfig {
                streaming_inflight_chunks: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // Byte-identity outside the timed loop.
        for (i, data) in datasets.iter().enumerate() {
            client.publish(&item_name(i), data, &config).unwrap();
            let streamed = client
                .fetch_and_decode_streaming(&item_name(i), tier)
                .unwrap();
            assert_eq!(&streamed.data, data, "streaming decode must be identical");
            streaming_verified += 1;
        }
        for r in 0..rounds {
            let name = item_name(r % args.items);
            let streamed = client.fetch_and_decode_streaming(&name, tier).unwrap();
            stream_first.push(streamed.first_segment_nanos);
            stream_total.push(streamed.total_nanos);
            stream_chunks += streamed.chunk_count as u64;

            let t = Instant::now();
            let content = client.request(&name, tier).unwrap();
            buffered_transfer.push(t.elapsed().as_nanos() as u64);
            let decoded = content.decode_with(client.backend()).unwrap();
            buffered_total.push(t.elapsed().as_nanos() as u64);
            assert_eq!(decoded.len(), streamed.data.len());
        }
        stream_server = Some(srv);
        stream_first.sort_unstable();
        stream_total.sort_unstable();
        buffered_transfer.sort_unstable();
        buffered_total.sort_unstable();
        let first_p50 = percentile(&stream_first, 0.50);
        let transfer_p50 = percentile(&buffered_transfer, 0.50);
        println!(
            "streaming: time-to-first-segment p50 {:.3} ms, total p50 {:.3} ms \
             ({:.1} chunks/transfer)",
            first_p50 as f64 / 1e6,
            percentile(&stream_total, 0.50) as f64 / 1e6,
            stream_chunks as f64 / rounds as f64
        );
        println!(
            "buffered:  transfer p50 {:.3} ms, transfer+decode p50 {:.3} ms",
            transfer_p50 as f64 / 1e6,
            percentile(&buffered_total, 0.50) as f64 / 1e6
        );
        assert!(
            first_p50 < transfer_p50,
            "pipelining regressed: first segment at {first_p50} ns, \
             buffered transfer alone takes {transfer_p50} ns"
        );
    }

    println!(
        "{total} requests on {} client threads in {wall:.3}s => {rps:.0} req/s",
        args.clients
    );
    println!(
        "latency p50 {:.3} ms, p99 {:.3} ms; {:.1} MiB transferred",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        bytes_transferred as f64 / (1 << 20) as f64
    );
    println!(
        "server: {} B served, cache {} hits / {} misses (hit rate {:.4}), \
         {} active connections at snapshot",
        stats.stats.bytes_served,
        stats.stats.cache_hits,
        stats.stats.cache_misses,
        stats.stats.hit_rate(),
        stats.stats.active_connections
    );

    // Stage percentiles from the headline server's own instruments —
    // the pipeline observed from the inside, not timed from the client.
    let tel = server.telemetry().snapshot();
    let stage_hist = |name: &str| tel.hist(name).cloned().unwrap_or_default();
    let inline_h = stage_hist("inline_serve_ns");
    let wait_h = stage_hist("dispatch_wait_ns");
    let flush_h = stage_hist("write_flush_ns");
    println!(
        "stages: inline-serve p50 {:.1} us / p90 {:.1} / p99 {:.1} ({} samples); \
         dispatch-wait p99 {:.1} us ({} samples); write-flush p99 {:.1} us",
        inline_h.p50() as f64 / 1e3,
        inline_h.p90() as f64 / 1e3,
        inline_h.p99() as f64 / 1e3,
        inline_h.count,
        wait_h.p99() as f64 / 1e3,
        wait_h.count,
        flush_h.p99() as f64 / 1e3,
    );

    let telemetry_json = format!(
        ",\n  \"telemetry_level\": \"{}\",\n  \
         \"request_hist_us_p50\": {:.1},\n  \
         \"request_hist_us_p90\": {:.1},\n  \
         \"request_hist_us_p99\": {:.1},\n  \
         \"inline_serve_us_p50\": {:.1},\n  \
         \"inline_serve_us_p90\": {:.1},\n  \
         \"inline_serve_us_p99\": {:.1},\n  \
         \"dispatch_wait_us_p99\": {:.1},\n  \
         \"write_flush_us_p99\": {:.1},\n  \
         \"telemetry_off_req_s\": {:.1},\n  \
         \"telemetry_counters_req_s\": {:.1},\n  \
         \"telemetry_counters_overhead_pct\": {:.2}",
        tel.level.name(),
        request_hist.p50() as f64 / 1e3,
        request_hist.p90() as f64 / 1e3,
        request_hist.p99() as f64 / 1e3,
        inline_h.p50() as f64 / 1e3,
        inline_h.p90() as f64 / 1e3,
        inline_h.p99() as f64 / 1e3,
        wait_h.p99() as f64 / 1e3,
        flush_h.p99() as f64 / 1e3,
        overhead_rps[0],
        overhead_rps[1],
        overhead_pct,
    );
    let streaming_json = if args.streaming {
        format!(
            ",\n  \"streaming\": true,\n  \
             \"time_to_first_segment_us_p50\": {:.1},\n  \
             \"time_to_first_segment_us_p99\": {:.1},\n  \
             \"streaming_total_us_p50\": {:.1},\n  \
             \"streaming_total_us_p99\": {:.1},\n  \
             \"buffered_transfer_us_p50\": {:.1},\n  \
             \"buffered_total_us_p50\": {:.1},\n  \
             \"streaming_chunks_per_transfer\": {:.1},\n  \
             \"streaming_verified_decodes\": {}",
            percentile(&stream_first, 0.50) as f64 / 1e3,
            percentile(&stream_first, 0.99) as f64 / 1e3,
            percentile(&stream_total, 0.50) as f64 / 1e3,
            percentile(&stream_total, 0.99) as f64 / 1e3,
            percentile(&buffered_transfer, 0.50) as f64 / 1e3,
            percentile(&buffered_total, 0.50) as f64 / 1e3,
            stream_chunks as f64 / stream_first.len().max(1) as f64,
            streaming_verified,
        )
    } else {
        ",\n  \"streaming\": false".to_string()
    };
    let chaos_json = if args.chaos {
        chaos_phase(&args)
    } else {
        ",\n  \"chaos\": false".to_string()
    };
    let json = format!(
        "{{\n  \"experiment\": \"net\",\n  \"smoke\": {},\n  \"clients\": {},\n  \
         \"requests_per_client\": {},\n  \"items\": {},\n  \"bytes_per_item\": {},\n  \
         \"max_segments\": {},\n  \"total_requests\": {},\n  \"wall_seconds\": {:.6},\n  \
         \"requests_per_sec\": {:.1},\n  \"latency_p50_us\": {:.1},\n  \
         \"latency_p99_us\": {:.1},\n  \"bytes_transferred\": {},\n  \
         \"server_bytes_served\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"cache_hit_rate\": {:.6},\n  \"verified_decodes\": {},\n  \
         \"connections\": {},\n  \"concurrent_requests\": {},\n  \
         \"concurrent_req_s\": {:.1},\n  \"rejected_connections\": {},\n  \
         \"evicted_connections\": {}{}{}{}\n}}\n",
        args.smoke,
        args.clients,
        args.requests,
        args.items,
        args.bytes,
        args.max_segments,
        total,
        wall,
        rps,
        p50 as f64 / 1e3,
        p99 as f64 / 1e3,
        bytes_transferred,
        stats.stats.bytes_served,
        stats.stats.cache_hits,
        stats.stats.cache_misses,
        stats.stats.hit_rate(),
        verified,
        idle_held + drivers,
        concurrent_requests,
        concurrent_rps,
        after.stats.rejected_connections,
        after.stats.evicted_connections,
        telemetry_json,
        streaming_json,
        chaos_json,
    );
    let path = "BENCH_net.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
    println!("[results written to {path}]");

    if args.trace {
        // A fresh snapshot (the earlier one predates the overhead phase)
        // rendered as the text exposition, plus the drained stage-event
        // ring — the artifact CI uploads from the smoke run.
        let mut text = server.telemetry().snapshot().render_text();
        let events = server.telemetry().drain_trace();
        text.push_str(&format!("\n# trace ring: {} events\n", events.len()));
        for (ticket, ev) in &events {
            text.push_str(&format!(
                "# trace[{ticket}] {} conn_gen={} t_ns={} detail={}\n",
                ev.stage.name(),
                ev.conn_gen,
                ev.t_ns,
                ev.detail
            ));
        }
        let trace_path = "TELEMETRY.txt";
        std::fs::write(trace_path, text)
            .unwrap_or_else(|e| panic!("could not write {trace_path}: {e}"));
        println!("[telemetry exposition written to {trace_path}]");
    }

    if let Some(srv) = stream_server {
        srv.shutdown();
    }
    server.shutdown();
}
