//! Single-thread decode throughput: the fast-loop engine vs the retained
//! careful reference, every [`DecodeBackend`], and pooled segment decode.
//!
//! This is the decode column of the perf trajectory (the serving and
//! transport sides already track `BENCH_serve.json` / `BENCH_net.json`).
//! Reports MB/s to stdout and as JSON to `BENCH_decode.json`; the headline
//! number is `fast_over_careful` — the speedup of
//! `recoil_rans::fast::decode_span` over `decode_span_careful` on the same
//! stream, same thread, same machine.
//!
//! ```sh
//! cargo run --release -p recoil-bench --bin decode
//! cargo run --release -p recoil-bench --bin decode -- --smoke       # CI
//! cargo run --release -p recoil-bench --bin decode -- --bytes 64000000 --iters 9
//! ```

use recoil::prelude::*;
use recoil::rans::fast::{decode_span, decode_span_careful};
use recoil::simd::Kernel;
use std::io::Write;
use std::time::Instant;

struct Args {
    bytes: usize,
    iters: usize,
    max_segments: u64,
    threads: usize,
    smoke: bool,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let mut a = Self {
            bytes: 32_000_000,
            iters: 7,
            max_segments: 64,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            smoke: false,
        };
        let mut i = 1;
        while i < argv.len() {
            let next = |i: &mut usize| {
                *i += 1;
                argv[*i].parse().expect("numeric argument")
            };
            match argv[i].as_str() {
                "--bytes" => a.bytes = next(&mut i),
                "--iters" => a.iters = next(&mut i),
                "--max-segments" => a.max_segments = next(&mut i) as u64,
                "--threads" => a.threads = next(&mut i),
                "--smoke" => a.smoke = true,
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        if a.smoke {
            a.bytes = a.bytes.min(4_000_000);
            a.iters = a.iters.min(3);
        }
        a
    }
}

/// Best-of-`iters` wall time for `run`, after one warmup; the minimum is
/// the stable estimator on shared machines.
fn measure(iters: usize, mut run: impl FnMut()) -> f64 {
    run();
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = Args::parse();
    let quant_bits = 11u32;
    println!(
        "decode bench: {} bytes, best of {} iters{}",
        args.bytes,
        args.iters,
        if args.smoke { " (smoke)" } else { "" }
    );

    let data = recoil::data::text_like_bytes(args.bytes, 5.1, 99);
    let codec = Codec::builder()
        .max_segments(args.max_segments)
        .quant_bits(quant_bits)
        .build()
        .unwrap();
    let enc = codec.encode(&data).unwrap();
    let stream = &enc.container.stream;
    println!(
        "payload: {} symbols -> {} words, {} segments",
        data.len(),
        stream.words.len(),
        enc.container.metadata.num_segments()
    );
    let mbps = |secs: f64| data.len() as f64 / secs / 1e6;
    let mut results: Vec<(String, f64)> = Vec::new();
    let mut out = vec![0u8; data.len()];
    let next = stream.end_cursor();

    // The raw engines: serial whole-stream decode from the final states,
    // no split metadata involved — the purest fast-vs-careful comparison.
    let fast = measure(args.iters, || {
        let mut states = stream.final_states.clone();
        decode_span(&enc.model, &stream.words, next, &mut states, 0, &mut out).unwrap();
        std::hint::black_box(&out);
    });
    assert_eq!(out, data, "fast engine misdecoded");
    results.push(("fast_scalar".into(), mbps(fast)));

    let careful = measure(args.iters, || {
        let mut states = stream.final_states.clone();
        decode_span_careful(&enc.model, &stream.words, next, &mut states, 0, &mut out).unwrap();
        std::hint::black_box(&out);
    });
    assert_eq!(out, data, "careful reference misdecoded");
    results.push(("careful_reference".into(), mbps(careful)));
    let speedup = careful / fast;

    // Single-thread backends over the split metadata (sync phases + fast
    // engine per segment; the vector backends add their kernels).
    let mut backends: Vec<(String, Box<dyn DecodeBackend>)> = vec![
        ("backend_scalar".into(), Box::new(ScalarBackend)),
        ("backend_auto_1t".into(), Box::new(AutoBackend::new())),
    ];
    if Kernel::Avx2.is_available() {
        backends.push(("backend_avx2_1t".into(), Box::new(Avx2Backend::new())));
    }
    if Kernel::Avx512.is_available() {
        backends.push(("backend_avx512_1t".into(), Box::new(Avx512Backend::new())));
    }
    for (name, backend) in &backends {
        let secs = measure(args.iters, || {
            codec
                .decode_with_into(backend.as_ref(), &enc, &mut out)
                .unwrap();
            std::hint::black_box(&out);
        });
        assert_eq!(out, data, "{name} misdecoded");
        results.push((name.clone(), mbps(secs)));
    }

    // Pooled segment decode: one task per metadata segment on a persistent
    // thread pool — the server-side and streaming-receiver configuration.
    let pooled = PooledBackend::new(args.threads);
    let pooled_name = format!("pooled_{}t_segments", args.threads);
    let secs = measure(args.iters, || {
        codec.decode_with_into(&pooled, &enc, &mut out).unwrap();
        std::hint::black_box(&out);
    });
    assert_eq!(out, data, "pooled backend misdecoded");
    results.push((pooled_name, mbps(secs)));

    println!("\n{:<24} {:>10}", "config", "MB/s");
    for (name, v) in &results {
        println!("{name:<24} {v:>10.1}");
    }
    println!("fast over careful reference: {speedup:.2}x");
    if speedup < 1.3 {
        eprintln!("WARNING: fast loop under the 1.3x target on this run");
    }

    let mut rows = String::new();
    for (i, (name, v)) in results.iter().enumerate() {
        rows.push_str(&format!(
            "    {{\"config\": \"{name}\", \"mb_per_s\": {v:.1}}}{}\n",
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"decode\",\n  \"smoke\": {},\n  \
         \"payload_bytes\": {},\n  \"stream_words\": {},\n  \
         \"quant_bits\": {quant_bits},\n  \"ways\": 32,\n  \
         \"segments\": {},\n  \"iters\": {},\n  \"threads\": {},\n  \
         \"fast_over_careful\": {speedup:.3},\n  \"results\": [\n{rows}  ]\n}}\n",
        args.smoke,
        data.len(),
        stream.words.len(),
        enc.container.metadata.num_segments(),
        args.iters,
        args.threads,
    );
    let path = "BENCH_decode.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
    println!("[results written to {path}]");
}
