//! Ablation studies beyond the paper's tables (DESIGN.md §4, "Ablations"):
//!
//! 1. **Heuristic**: Definition 4.1's sync-aware scoring vs. naive
//!    nearest-to-target splitting — sync-section length and workload
//!    balance.
//! 2. **Metadata scaling**: serialized metadata bytes per split across
//!    split counts (the paper's ≈76 B/split at W = 32).
//! 3. **Combine cost**: the real-time split-combining latency for a range
//!    of requested parallelism levels (§3.3 claims it is negligible).

use recoil::core::{plan_from_events, Heuristic, PlannerConfig};
use recoil::prelude::*;
use recoil_bench::report::{print_table, Reporter};
use recoil_bench::BenchConfig;
use std::time::Instant;

fn heuristic_study(data: &[u8], reporter: &mut Reporter) {
    let model = StaticModelProvider::new(CdfTable::of_bytes(data, 11));
    let mut enc = InterleavedEncoder::new(&model, 32);
    let mut sink = VecSink::new();
    enc.encode_all(data, &mut sink);
    let stream = enc.finish();

    let mut rows = Vec::new();
    for (name, heuristic) in [
        ("Def4.1 sync-aware", Heuristic::SyncAware),
        ("naive nearest", Heuristic::NearestOnly),
    ] {
        for segments in [16u64, 256, 2176] {
            let mut cfg = PlannerConfig::with_segments(segments);
            cfg.heuristic = heuristic;
            let meta = plan_from_events(
                &sink.events,
                32,
                stream.num_symbols,
                stream.words.len() as u64,
                11,
                cfg,
            );
            let syncs: Vec<u64> = meta.splits.iter().map(|s| s.sync_len()).collect();
            let avg_sync = syncs.iter().sum::<u64>() as f64 / syncs.len().max(1) as f64;
            let max_sync = syncs.iter().max().copied().unwrap_or(0);
            let bounds = meta.segment_bounds();
            let spans: Vec<u64> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
            let target = stream.num_symbols as f64 / segments as f64;
            let worst = spans.iter().max().copied().unwrap_or(0) as f64 / target;
            reporter.push(
                "ablation-heuristic",
                name,
                &segments.to_string(),
                avg_sync,
                "sync symbols",
                None,
            );
            rows.push(vec![
                name.into(),
                segments.to_string(),
                format!("{:.1}", avg_sync),
                max_sync.to_string(),
                format!("{:.3}x", worst),
            ]);
        }
    }
    print_table(
        "Ablation 1: split heuristic (10 MB text, n=11)",
        &[
            "heuristic",
            "segments",
            "avg sync len",
            "max sync len",
            "worst span/target",
        ],
        &rows,
    );
}

fn metadata_scaling(data: &[u8], reporter: &mut Reporter) {
    let model = StaticModelProvider::new(CdfTable::of_bytes(data, 11));
    let mut rows = Vec::new();
    for segments in [16u64, 64, 256, 1024, 2176, 4096] {
        let codec = Codec::builder().max_segments(segments).build().unwrap();
        let c = codec.encode_with_provider(data, &model).unwrap();
        let meta_bytes = c.metadata_bytes();
        let per_split = meta_bytes as f64 / (c.metadata.num_segments() - 1).max(1) as f64;
        let pct = 100.0 * meta_bytes as f64 / c.stream_bytes() as f64;
        reporter.push(
            "ablation-metadata",
            "rand_100",
            &segments.to_string(),
            per_split,
            "B/split",
            None,
        );
        rows.push(vec![
            segments.to_string(),
            c.metadata.num_segments().to_string(),
            meta_bytes.to_string(),
            format!("{per_split:.1}"),
            format!("{pct:.3}%"),
        ]);
    }
    print_table(
        "Ablation 2: metadata size vs split count (10 MB rand_100, n=11, W=32)",
        &[
            "requested",
            "planned",
            "metadata bytes",
            "bytes/split",
            "of payload",
        ],
        &rows,
    );
    println!("paper §5.2 ballpark: ≈76 B/split at W=32 (64 B of raw u16 states + diffs)");
}

fn combine_cost(data: &[u8], reporter: &mut Reporter) {
    let model = StaticModelProvider::new(CdfTable::of_bytes(data, 11));
    let codec = Codec::builder().max_segments(2176).build().unwrap();
    let c = codec.encode_with_provider(data, &model).unwrap();
    let mut rows = Vec::new();
    for target in [1u64, 4, 16, 64, 256, 1024] {
        let runs = 200;
        let t0 = Instant::now();
        for _ in 0..runs {
            let m = combine_splits(&c.metadata, target);
            std::hint::black_box(&m);
        }
        let each = t0.elapsed().as_secs_f64() / runs as f64;
        // Include serialization, as a server response would.
        let t0 = Instant::now();
        for _ in 0..runs {
            let m = combine_splits(&c.metadata, target);
            std::hint::black_box(metadata_to_bytes(&m));
        }
        let with_ser = t0.elapsed().as_secs_f64() / runs as f64;
        reporter.push(
            "ablation-combine",
            "rand_100",
            &target.to_string(),
            with_ser * 1e6,
            "us",
            None,
        );
        rows.push(vec![
            target.to_string(),
            format!("{:.1} µs", each * 1e6),
            format!("{:.1} µs", with_ser * 1e6),
        ]);
    }
    print_table(
        "Ablation 3: real-time combine cost from 2176 splits (§3.3)",
        &["target segments", "combine", "combine+serialize"],
        &rows,
    );
}

fn main() {
    let _cfg = BenchConfig::from_args();
    let mut reporter = Reporter::new();
    let text = recoil::data::Dataset::by_name("enwik9")
        .unwrap()
        .generate_bytes(10_000_000);
    heuristic_study(&text, &mut reporter);
    let rand = recoil::data::Dataset::by_name("rand_100")
        .unwrap()
        .generate_bytes(10_000_000);
    metadata_scaling(&rand, &mut reporter);
    combine_cost(&rand, &mut reporter);
    reporter.flush("ablation");
}
