//! Figure 3: compressed file size vs. number of symbol sub-sequences using
//! the conventional partitioning approach. "Evaluated on the first 10
//! Megabytes of enwik9, using a static distribution quantized to 2^11. The
//! base codec is 32-way interleaved."
//!
//! Paper reference points: 1 → +0.00%, 16 → +0.02%, 2176 → +3.20%.

use recoil::conventional::encode_conventional;
use recoil::prelude::*;
use recoil_bench::report::{print_table, Reporter};

fn main() {
    let enwik9 = recoil::data::Dataset::by_name("enwik9").unwrap();
    let data = enwik9.generate_bytes(10_000_000);
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));

    // The paper's three points plus a fuller sweep of the curve.
    let sweep = [1usize, 2, 4, 16, 64, 256, 1024, 2176, 4096];
    let paper: &[(usize, f64)] = &[(1, 0.00), (16, 0.02), (2176, 3.20)];

    let mut reporter = Reporter::new();
    let mut rows = Vec::new();
    let mut base = 0u64;
    for &parts in &sweep {
        let c = encode_conventional(&data, &model, 32, parts);
        let bytes = c.payload_bytes();
        if parts == 1 {
            base = bytes;
        }
        let pct = 100.0 * (bytes as f64 - base as f64) / base as f64;
        let paper_pct = paper.iter().find(|(p, _)| *p == parts).map(|&(_, v)| v);
        reporter.push(
            "fig3",
            "enwik9[0..10MB]",
            &parts.to_string(),
            pct,
            "%",
            paper_pct,
        );
        rows.push(vec![
            parts.to_string(),
            format!("{:.3} MB", bytes as f64 / 1e6),
            format!("{pct:+.2}%"),
            paper_pct.map_or("-".into(), |v| format!("{v:+.2}%")),
        ]);
    }
    print_table(
        "Figure 3: file size vs N sub-sequences (Conventional, n=11, 32-way)",
        &["N", "file size", "overhead", "paper"],
        &rows,
    );
    println!("\nshape check: overhead grows ~linearly in N; the 2176-partition");
    println!("variation intended for GPUs visibly inflates the file, the CPU-sized");
    println!("16-partition one does not — the inflexibility Recoil removes.");
    reporter.flush("fig3");
}
