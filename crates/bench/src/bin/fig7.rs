//! Figure 7: decoding throughput of the six bitstream variations.
//!
//! CPU experiments (paper: 16C Xeon W-3245, AVX-512 & AVX2): Single-Thread
//! decodes variation (a); Conventional decodes (d) and Recoil decodes (e)
//! on 16 threads. GPU experiments (paper: RTX 2080 Ti, CUDA): multians
//! decodes (f), Conventional (b) and Recoil (c) at 2176-way parallelism —
//! here run as a thread-pool "GPU-sim" over the identical per-split code
//! path (substitution notes in DESIGN.md; absolute GB/s is hardware,
//! relative shape is the claim).
//!
//! ```sh
//! cargo run -p recoil-bench --release --bin fig7
//! cargo run -p recoil-bench --release --bin fig7 -- --full --runs 10
//! ```

use recoil::core::codec::{decode_pooled, DecodeRequest};
use recoil::data::ALL_DATASETS;
use recoil::prelude::*;
use recoil_bench::report::{print_table, Reporter};
use recoil_bench::variations::{ByteVariations, LARGE};
use recoil_bench::{measure_gbps, BenchConfig};
use std::sync::Arc;

/// The decode backend matching one of the paper's kernel configurations,
/// sized to `threads` total decode threads.
fn backend_for(kernel: Kernel, threads: usize) -> Box<dyn DecodeBackend> {
    match kernel {
        Kernel::Scalar => Box::new(PooledBackend::new(threads)),
        Kernel::Avx2 => Box::new(Avx2Backend::with_threads(threads)),
        Kernel::Avx512 => Box::new(Avx512Backend::with_threads(threads)),
    }
}

/// Paper Figure 7 values in GB/s: (dataset, n) → per-configuration numbers.
/// Order: [multians, ConvCUDA, RecoilCUDA, ST-512, Conv-512, Recoil-512,
/// ST-AVX2, Conv-AVX2, Recoil-AVX2]; NaN where the paper has no bar.
#[rustfmt::skip]
fn paper_fig7(dataset: &str, n: u32) -> Option<[f64; 9]> {
    const NAN: f64 = f64::NAN;
    let t: &[(&str, u32, [f64; 9])] = &[
        ("rand_10",  11, [9.5, 71.2, 76.4, 0.9, 7.6, 7.5, 0.5, 5.1, 4.9]),
        ("rand_50",  11, [4.8, 73.1, 77.9, 0.9, 7.9, 7.7, 0.5, 5.2, 5.0]),
        ("rand_100", 11, [3.2, 71.4, 76.5, 0.9, 7.8, 7.9, 0.7, 6.1, 6.1]),
        ("rand_200", 11, [4.8, 72.7, 74.9, 0.7, 6.6, 7.2, 0.7, 5.8, 5.1]),
        ("rand_500", 11, [1.6, 75.8, 68.9, 0.8, 6.5, 6.4, 0.5, 5.3, 5.2]),
        ("dickens",  11, [4.9, 72.3, 76.3, 0.9, 8.1, 8.1, 0.7, 6.3, 6.3]),
        ("webster",  11, [6.6, 87.1, 90.3, 0.9, 8.9, 8.9, 0.7, 7.0, 6.6]),
        ("enwik8",   11, [6.8, 87.4, 89.5, 0.9, 10.5, 10.4, 0.7, 6.7, 6.4]),
        ("enwik9",   11, [6.9, 96.9, 94.8, 0.9, 11.0, 11.2, 0.6, 7.5, 7.8]),
        ("rand_10",  16, [0.3, 27.3, 29.3, 0.6, 5.7, 5.1, 0.5, 4.7, 4.9]),
        ("rand_50",  16, [0.1, 28.3, 29.6, 0.6, 5.3, 5.8, 0.5, 4.9, 4.9]),
        ("rand_100", 16, [0.1, 28.8, 29.8, 0.6, 5.5, 5.5, 0.5, 3.9, 3.5]),
        ("rand_200", 16, [0.1, 28.9, 29.7, 0.4, 4.2, 4.1, 0.5, 5.0, 4.8]),
        ("rand_500", 16, [0.1, 30.4, 27.6, 0.5, 4.3, 4.1, 0.5, 5.0, 4.9]),
        ("dickens",  16, [0.2, 28.1, 29.5, 0.6, 5.1, 5.3, 0.5, 4.2, 3.7]),
        ("webster",  16, [0.5, 29.8, 31.0, 0.6, 6.8, 7.0, 0.5, 5.9, 5.8]),
        ("enwik8",   16, [0.7, 30.4, 31.5, 0.6, 6.3, 6.1, 0.6, 6.7, 6.7]),
        ("enwik9",   16, [1.0, 31.4, 31.9, 0.6, 7.9, 7.9, 0.6, 7.7, 7.4]),
        ("div2k801", 16, [NAN, 11.7, 11.6, 0.3, 2.6, 2.6, 0.2, 2.4, 2.2]),
        ("div2k803", 16, [NAN, 23.3, 21.9, 0.3, 3.3, 3.4, 0.3, 2.8, 2.7]),
        ("div2k805", 16, [NAN, 10.5, 10.2, 0.3, 2.6, 2.7, 0.2, 2.4, 2.3]),
    ];
    t.iter().find(|(d, nn, _)| *d == dataset && *nn == n).map(|&(_, _, v)| v)
}

fn fmt(v: f64, paper: f64) -> String {
    if paper.is_nan() {
        format!("{v:.2}")
    } else {
        format!("{v:.2} [{paper}]")
    }
}

fn byte_dataset_fig7(
    cfg: &BenchConfig,
    reporter: &mut Reporter,
    cpu_pool: &ThreadPool,
    gpu_pool: &ThreadPool,
) {
    let gpu_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let gpu_backend = backend_for(Kernel::best(), gpu_threads);
    let kernels: Vec<Kernel> = [Kernel::Avx512, Kernel::Avx2]
        .into_iter()
        .filter(|k| k.is_available())
        .collect();
    let cpu_backends: Vec<(Kernel, Box<dyn DecodeBackend>)> = kernels
        .iter()
        .map(|&k| (k, backend_for(k, cfg.threads)))
        .collect();

    for &n in &[11u32, 16] {
        let mut gpu_rows = Vec::new();
        let mut cpu_rows = Vec::new();
        for d in ALL_DATASETS.iter().filter(|d| !d.is_latent()) {
            let bytes = cfg.dataset_bytes(d);
            eprintln!("[fig7 {} n={n}: {bytes} bytes]", d.name);
            let data = d.generate_bytes(bytes);
            let v = ByteVariations::build(&data, n);
            let paper = paper_fig7(d.name, n).unwrap_or([f64::NAN; 9]);
            let mut out = vec![0u8; data.len()];

            // --- GPU-sim: multians (f), Conventional (b), Recoil (c). ---
            let kern = Kernel::best();
            let g_mult = measure_gbps(cfg.runs, bytes, || {
                let (o, _) =
                    decode_multians::<u8>(&v.tans.0, &v.tans.1, LARGE, Some(gpu_pool)).unwrap();
                assert_eq!(o.len(), data.len());
            });
            let g_conv = measure_gbps(cfg.runs, bytes, || {
                decode_conventional_simd(kern, &v.conv_large, &v.model, Some(gpu_pool), &mut out)
                    .unwrap();
            });
            let g_rec = measure_gbps(cfg.runs, bytes, || {
                let req = DecodeRequest {
                    stream: &v.recoil_large.stream,
                    metadata: &v.recoil_large.metadata,
                    model: &v.model,
                };
                gpu_backend.decode_u8(&req, &mut out).unwrap();
            });
            for (cfg_name, val, p) in [
                ("multians", g_mult, paper[0]),
                ("conv", g_conv, paper[1]),
                ("recoil", g_rec, paper[2]),
            ] {
                reporter.push(
                    &format!("fig7-gpu-n{n}"),
                    d.name,
                    cfg_name,
                    val,
                    "GB/s",
                    (!p.is_nan()).then_some(p),
                );
            }
            gpu_rows.push(vec![
                d.name.into(),
                fmt(g_mult, paper[0]),
                fmt(g_conv, paper[1]),
                fmt(g_rec, paper[2]),
            ]);

            // --- CPU: Single-Thread (a), Conventional (d), Recoil (e). ---
            let mut row = vec![d.name.to_string()];
            for (ki, (kernel, cpu_backend)) in cpu_backends.iter().enumerate() {
                let kernel = *kernel;
                let pbase = if kernel == Kernel::Avx512 { 3 } else { 6 };
                let c_single = measure_gbps(cfg.runs, bytes, || {
                    let m = SimdModel::from_provider(&v.model);
                    decode_interleaved_simd(kernel, &v.recoil_large.stream, &m, &mut out).unwrap();
                });
                let c_conv = measure_gbps(cfg.runs, bytes, || {
                    decode_conventional_simd(
                        kernel,
                        &v.conv_small,
                        &v.model,
                        Some(cpu_pool),
                        &mut out,
                    )
                    .unwrap();
                });
                let c_rec = measure_gbps(cfg.runs, bytes, || {
                    let req = DecodeRequest {
                        stream: &v.recoil_large.stream,
                        metadata: &v.recoil_small,
                        model: &v.model,
                    };
                    cpu_backend.decode_u8(&req, &mut out).unwrap();
                });
                for (cfg_name, val, p) in [
                    ("single", c_single, paper[pbase]),
                    ("conv", c_conv, paper[pbase + 1]),
                    ("recoil", c_rec, paper[pbase + 2]),
                ] {
                    reporter.push(
                        &format!("fig7-cpu-{kernel:?}-n{n}").to_lowercase(),
                        d.name,
                        cfg_name,
                        val,
                        "GB/s",
                        (!p.is_nan()).then_some(p),
                    );
                }
                let _ = ki;
                row.push(fmt(c_single, paper[pbase]));
                row.push(fmt(c_conv, paper[pbase + 1]));
                row.push(fmt(c_rec, paper[pbase + 2]));
            }
            cpu_rows.push(row);
        }
        print_table(
            &format!("Figure 7 GPU-sim (n={n}), GB/s [paper CUDA]"),
            &["dataset", "multians(f)", "Conventional(b)", "Recoil(c)"],
            &gpu_rows,
        );
        let mut headers = vec!["dataset"];
        for k in &kernels {
            match k {
                Kernel::Avx512 => headers.extend(["ST-512", "Conv-512", "Rec-512"]),
                Kernel::Avx2 => headers.extend(["ST-AVX2", "Conv-AVX2", "Rec-AVX2"]),
                Kernel::Scalar => {}
            }
        }
        print_table(
            &format!(
                "Figure 7 CPU ({} threads, n={n}), GB/s [paper]",
                cfg.threads
            ),
            &headers,
            &cpu_rows,
        );
    }
}

fn latent_fig7(
    cfg: &BenchConfig,
    reporter: &mut Reporter,
    cpu_pool: &ThreadPool,
    gpu_pool: &ThreadPool,
) {
    // Adaptive models have no flat-LUT SIMD path (per-position indirection);
    // both CPU and GPU-sim rows run the scalar trait-based decoder — the
    // paper's adaptive rows are likewise its slowest (§5.3).
    eprintln!("[fig7 div2k: building n=16 scale bank]");
    let bank = Arc::new(GaussianScaleBank::default_latent_bank());
    let mut rows = Vec::new();
    for d in ALL_DATASETS.iter().filter(|d| d.is_latent()) {
        let bytes = cfg.dataset_bytes(d);
        eprintln!("[fig7 {}: {bytes} latent bytes]", d.name);
        let ds = d.generate_latents(Arc::clone(&bank), bytes);
        let codec = Codec::builder()
            .max_segments(LARGE as u64)
            .quant_bits(16)
            .build()
            .unwrap();
        let recoil_large = codec
            .encode_with_provider(&ds.symbols, &ds.provider)
            .unwrap();
        let recoil_small = combine_splits(&recoil_large.metadata, 16);
        let conv_large =
            recoil::conventional::encode_conventional(&ds.symbols, &ds.provider, 32, LARGE);
        let conv_small =
            recoil::conventional::encode_conventional(&ds.symbols, &ds.provider, 32, 16);
        let paper = paper_fig7(d.name, 16).unwrap();

        let mut out = vec![0u16; ds.symbols.len()];
        let g_conv = measure_gbps(cfg.runs, bytes, || {
            recoil::conventional::decode_conventional_into(
                &conv_large,
                &ds.provider,
                Some(gpu_pool),
                &mut out,
            )
            .unwrap();
        });
        let g_rec = measure_gbps(cfg.runs, bytes, || {
            decode_pooled(
                &recoil_large.stream,
                &recoil_large.metadata,
                &ds.provider,
                Some(gpu_pool),
                &mut out,
            )
            .unwrap();
        });
        let c_conv = measure_gbps(cfg.runs, bytes, || {
            recoil::conventional::decode_conventional_into(
                &conv_small,
                &ds.provider,
                Some(cpu_pool),
                &mut out,
            )
            .unwrap();
        });
        let c_rec = measure_gbps(cfg.runs, bytes, || {
            decode_pooled(
                &recoil_large.stream,
                &recoil_small,
                &ds.provider,
                Some(cpu_pool),
                &mut out,
            )
            .unwrap();
        });
        for (exp, cfg_name, val, p) in [
            ("fig7-gpu-n16", "conv", g_conv, paper[1]),
            ("fig7-gpu-n16", "recoil", g_rec, paper[2]),
            ("fig7-cpu-adaptive-n16", "conv", c_conv, paper[4]),
            ("fig7-cpu-adaptive-n16", "recoil", c_rec, paper[5]),
        ] {
            reporter.push(
                exp,
                d.name,
                cfg_name,
                val,
                "GB/s",
                (!p.is_nan()).then_some(p),
            );
        }
        rows.push(vec![
            d.name.into(),
            fmt(g_conv, paper[1]),
            fmt(g_rec, paper[2]),
            fmt(c_conv, paper[4]),
            fmt(c_rec, paper[5]),
        ]);
    }
    print_table(
        "Figure 7 div2k (adaptive n=16, scalar decoder), GB/s [paper]",
        &[
            "dataset",
            "GPU-sim Conv(b)",
            "GPU-sim Recoil(c)",
            "CPU Conv(d)",
            "CPU Recoil(e)",
        ],
        &rows,
    );
}

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "fig7: CPU = {} threads, GPU-sim = all cores, {} runs/point, kernels {:?}",
        cfg.threads,
        cfg.runs,
        Kernel::all_available()
    );
    let mut reporter = Reporter::new();
    // One pool per hardware configuration for the whole run, shared by both
    // experiment families: the measurements time decoding, never pool
    // construction or thread churn.
    let cpu_pool = ThreadPool::new(cfg.threads.saturating_sub(1));
    let gpu_pool = ThreadPool::with_default_parallelism();
    byte_dataset_fig7(&cfg, &mut reporter, &cpu_pool, &gpu_pool);
    latent_fig7(&cfg, &mut reporter, &cpu_pool, &gpu_pool);
    reporter.flush("fig7");
}
