//! Tables 4, 5 and 6: baseline compressed sizes and the size deltas of the
//! six variations, for every dataset and both quantization levels.
//!
//! ```sh
//! cargo run -p recoil-bench --release --bin tables            # scaled sizes
//! cargo run -p recoil-bench --release --bin tables -- --full  # paper sizes
//! ```

use recoil::data::ALL_DATASETS;
use recoil::prelude::*;
use recoil_bench::report::{fmt_delta, print_table, Reporter};
use recoil_bench::variations::{ByteVariations, LARGE, SMALL};
use recoil_bench::BenchConfig;
use std::sync::Arc;

/// Paper deltas for Tables 5/6: (dataset, n, variation) → percent.
/// Used for the side-by-side "paper" column.
fn paper_pct(dataset: &str, n: u32, variation: &str) -> Option<f64> {
    let t5: &[(&str, [f64; 5])] = &[
        // (b) ConvL, (c) RecL, (d) ConvS, (e) RecS, (f) multians — n=11
        ("rand_10", [2.70, 2.09, 0.02, 0.01, 0.98]),
        ("rand_50", [3.95, 3.18, 0.03, 0.02, -3.32]),
        ("rand_100", [5.08, 4.16, 0.03, 0.03, -4.29]),
        ("rand_200", [6.94, 5.89, 0.04, 0.04, -11.68]),
        ("rand_500", [14.57, 13.59, 0.09, 0.08, -9.51]),
        ("dickens", [3.38, 2.63, 0.02, 0.02, -1.56]),
        ("webster", [0.77, 0.60, 0.01, 0.00, -0.44]),
        ("enwik8", [0.32, 0.25, 0.00, 0.00, 0.77]),
        ("enwik9", [0.03, 0.02, 0.00, 0.00, 0.50]),
    ];
    let t6: &[(&str, [f64; 5])] = &[
        ("rand_10", [2.76, 2.14, 0.02, 0.01, 2.62]),
        ("rand_50", [4.41, 3.59, 0.03, 0.02, 7.06]),
        ("rand_100", [5.97, 4.87, 0.04, 0.03, 10.15]),
        ("rand_200", [9.02, 7.81, 0.06, 0.05, 16.07]),
        ("rand_500", [23.54, 21.53, 0.14, 0.13, 42.54]),
        ("dickens", [3.65, 2.84, 0.03, 0.02, 5.39]),
        ("webster", [0.82, 0.64, 0.01, 0.00, 4.67]),
        ("enwik8", [0.33, 0.26, 0.00, 0.00, 3.94]),
        ("enwik9", [0.03, 0.03, 0.00, 0.00, 3.98]),
        ("div2k801", [10.31, 8.28, 0.07, 0.06, f64::NAN]),
        ("div2k803", [6.99, 5.37, 0.05, 0.04, f64::NAN]),
        ("div2k805", [14.20, 11.80, 0.10, 0.08, f64::NAN]),
    ];
    let table = if n == 11 { t5 } else { t6 };
    let idx = match variation {
        "(b)" => 0,
        "(c)" => 1,
        "(d)" => 2,
        "(e)" => 3,
        "(f)" => 4,
        _ => return None,
    };
    table
        .iter()
        .find(|(d, _)| *d == dataset)
        .map(|(_, v)| v[idx])
        .filter(|v| !v.is_nan())
}

fn byte_dataset_tables(cfg: &BenchConfig, reporter: &mut Reporter) {
    for &n in &[11u32, 16] {
        let mut t4_rows = Vec::new();
        let mut delta_rows = Vec::new();
        for d in ALL_DATASETS.iter().filter(|d| !d.is_latent()) {
            let bytes = cfg.dataset_bytes(d);
            let scale = bytes as f64 / d.full_bytes() as f64;
            eprintln!(
                "[{} n={n}: generating {bytes} bytes + building 6 variations]",
                d.name
            );
            let data = d.generate_bytes(bytes);
            let v = ByteVariations::build(&data, n);
            let a = v.baseline_bytes();

            // Table 4 row: baseline size vs paper (paper value scaled when
            // we run a scaled dataset).
            let paper_a = if n == 11 {
                d.paper.baseline_n11_kb.unwrap() as f64
            } else {
                d.paper.baseline_n16_kb as f64
            } * 1000.0
                * scale;
            reporter.push(
                "table4",
                d.name,
                &format!("(a) n={n}"),
                a as f64,
                "bytes",
                Some(paper_a),
            );
            t4_rows.push(vec![
                d.name.to_string(),
                format!("{:.0} KB", bytes as f64 / 1e3),
                format!("{:.0} KB", a as f64 / 1e3),
                format!("{:.0} KB", paper_a / 1e3),
                format!("{:+.1}%", 100.0 * (a as f64 - paper_a) / paper_a),
            ]);

            // Table 5/6 row: deltas of (b)-(f) vs (a).
            let mut row = vec![d.name.to_string()];
            for (label, total) in v.sizes() {
                let code = &label[..3];
                let delta = total as i64 - a as i64;
                let pct = 100.0 * delta as f64 / a as f64;
                let paper = paper_pct(d.name, n, code);
                reporter.push(
                    &format!("table{}", if n == 11 { 5 } else { 6 }),
                    d.name,
                    code,
                    pct,
                    "%",
                    paper,
                );
                row.push(format!(
                    "{} [paper {}]",
                    fmt_delta(delta, a),
                    paper.map_or("-".into(), |p| format!("{p:+.2}%"))
                ));
            }
            delta_rows.push(row);
        }
        print_table(
            &format!("Table 4 (n={n}): baseline (a) compressed sizes"),
            &["dataset", "input", "ours", "paper(scaled)", "diff"],
            &t4_rows,
        );
        print_table(
            &format!(
                "Table {} (n={n}): size deltas vs (a); Large={LARGE}, Small={SMALL}",
                if n == 11 { 5 } else { 6 }
            ),
            &[
                "dataset",
                "(b) ConvLarge",
                "(c) RecoilLarge",
                "(d) ConvSmall",
                "(e) RecoilSmall",
                "(f) multians",
            ],
            &delta_rows,
        );
    }
}

fn latent_tables(cfg: &BenchConfig, reporter: &mut Reporter) {
    eprintln!("[building n=16 Gaussian scale bank]");
    let bank = Arc::new(GaussianScaleBank::default_latent_bank());
    let mut rows = Vec::new();
    for d in ALL_DATASETS.iter().filter(|d| d.is_latent()) {
        let bytes = cfg.dataset_bytes(d);
        eprintln!("[{}: generating {bytes} latent bytes + variations]", d.name);
        let ds = d.generate_latents(Arc::clone(&bank), bytes);
        let codec = Codec::builder()
            .max_segments(2176)
            .quant_bits(16)
            .build()
            .unwrap();
        let recoil_large = codec
            .encode_with_provider(&ds.symbols, &ds.provider)
            .unwrap();
        let recoil_small = combine_splits(&recoil_large.metadata, 16);
        let conv_large =
            recoil::conventional::encode_conventional(&ds.symbols, &ds.provider, 32, 2176);
        let conv_small =
            recoil::conventional::encode_conventional(&ds.symbols, &ds.provider, 32, 16);

        let a = recoil_large.stream_bytes();
        let paper_a =
            d.paper.baseline_n16_kb as f64 * 1000.0 * (bytes as f64 / d.full_bytes() as f64);
        reporter.push(
            "table4",
            d.name,
            "(a) n=16",
            a as f64,
            "bytes",
            Some(paper_a),
        );

        let deltas = [
            ("(b)", conv_large.payload_bytes() as i64 - a as i64),
            ("(c)", recoil_large.metadata_bytes() as i64),
            ("(d)", conv_small.payload_bytes() as i64 - a as i64),
            ("(e)", metadata_to_bytes(&recoil_small).len() as i64),
        ];
        let mut row = vec![
            d.name.to_string(),
            format!("{:.0}/{:.0} KB", a as f64 / 1e3, paper_a / 1e3),
        ];
        for (code, delta) in deltas {
            let pct = 100.0 * delta as f64 / a as f64;
            let paper = paper_pct(d.name, 16, code);
            reporter.push("table6", d.name, code, pct, "%", paper);
            row.push(format!(
                "{} [paper {}]",
                fmt_delta(delta, a),
                paper.map_or("-".into(), |p| format!("{p:+.2}%"))
            ));
        }
        rows.push(row);
    }
    print_table(
        "Table 6 (div2k, adaptive n=16): size deltas vs (a)",
        &[
            "dataset",
            "(a) ours/paper",
            "(b) ConvLarge",
            "(c) RecoilLarge",
            "(d) ConvSmall",
            "(e) RecoilSmall",
        ],
        &rows,
    );
}

fn main() {
    let cfg = BenchConfig::from_args();
    let mut reporter = Reporter::new();
    byte_dataset_tables(&cfg, &mut reporter);
    latent_tables(&cfg, &mut reporter);

    // §5.2 headline: the max overhead reduction from serving Recoil Small
    // instead of Conventional Large is checked on rand_500 at n=16.
    println!("\nheadline (§5.2): serve (e) instead of (b) for a 16-way client on rand_500/n=16;");
    println!("the paper reports a -23.41% overhead reduction (ours in results/tables.json).");
    reporter.flush("tables");
}
