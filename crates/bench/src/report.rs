//! Table printing and JSON result recording.

use std::io::Write;
use std::path::Path;

/// One measured data point, written to `results/<experiment>.json` so
/// `EXPERIMENTS.md` can cite exact numbers.
#[derive(Debug, Clone)]
pub struct Record {
    /// Table/figure id, e.g. `"table5"`, `"fig7-gpu"`.
    pub experiment: String,
    /// Dataset name.
    pub dataset: String,
    /// Variation or configuration label.
    pub config: String,
    /// Measured value.
    pub value: f64,
    /// Unit, e.g. `"bytes"`, `"GB/s"`, `"%"`.
    pub unit: String,
    /// The paper's reference value, when one exists.
    pub paper: Option<f64>,
}

/// Collects records and flushes them to disk at the end of a run.
#[derive(Default)]
pub struct Reporter {
    records: Vec<Record>,
}

impl Reporter {
    /// Empty reporter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one record.
    pub fn push(
        &mut self,
        experiment: &str,
        dataset: &str,
        config: &str,
        value: f64,
        unit: &str,
        paper: Option<f64>,
    ) {
        self.records.push(Record {
            experiment: experiment.into(),
            dataset: dataset.into(),
            config: config.into(),
            value,
            unit: unit.into(),
            paper,
        });
    }

    /// Writes all records as JSON to `results/<name>.json`.
    pub fn flush(&self, name: &str) {
        let dir = Path::new("results");
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(format!("{name}.json"));
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                let json = records_to_json(&self.records);
                let _ = f.write_all(json.as_bytes());
                eprintln!("[results written to {}]", path.display());
            }
            Err(e) => eprintln!("[could not write {}: {e}]", path.display()),
        }
    }
}

/// Serializes records as pretty-printed JSON. The record fields are flat
/// strings/numbers, so hand-rolled emission (with string escaping) keeps the
/// harness free of registry dependencies.
fn records_to_json(records: &[Record]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!(
            "    \"experiment\": \"{}\",\n",
            esc(&r.experiment)
        ));
        out.push_str(&format!("    \"dataset\": \"{}\",\n", esc(&r.dataset)));
        out.push_str(&format!("    \"config\": \"{}\",\n", esc(&r.config)));
        out.push_str(&format!("    \"value\": {},\n", num(r.value)));
        out.push_str(&format!("    \"unit\": \"{}\",\n", esc(&r.unit)));
        match r.paper {
            Some(p) => out.push_str(&format!("    \"paper\": {}\n", num(p))),
            None => out.push_str("    \"paper\": null\n"),
        }
        out.push_str(if i + 1 == records.len() {
            "  }\n"
        } else {
            "  },\n"
        });
    }
    out.push(']');
    out
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i.min(widths.len() - 1)]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        line(row);
    }
}

/// Formats a byte delta the way the paper's Tables 5/6 do:
/// `"+163.67 KB (+2.09%)"`.
pub fn fmt_delta(delta_bytes: i64, baseline: u64) -> String {
    format!(
        "{:+.2} KB {:+.2}%",
        delta_bytes as f64 / 1000.0,
        100.0 * delta_bytes as f64 / baseline as f64
    )
}
