//! The decoding client: a machine with a given parallel capacity.

use crate::server::{ContentServer, Transmission};
use recoil_core::codec::{DecodeBackend, DecodeRequest};
use recoil_core::{metadata_from_bytes, RecoilError};
use recoil_models::StaticModelProvider;
use recoil_rans::EncodedStream;
use recoil_simd::AutoBackend;

/// A client decodes with however many threads it has and the best SIMD
/// kernel its CPU offers — the server never needs to know more than the
/// segment count the client asked for.
pub struct Client {
    backend: Box<dyn DecodeBackend>,
    /// Parallel segments this client requests from servers.
    pub parallel_segments: u64,
}

impl Client {
    /// Client with `threads` decode threads and runtime kernel dispatch
    /// (AVX-512 → AVX2 → scalar).
    pub fn new(threads: usize) -> Self {
        Self {
            backend: Box::new(AutoBackend::with_threads(threads)),
            parallel_segments: threads.max(1) as u64,
        }
    }

    /// Forces a specific decode backend (tests / measurements).
    pub fn with_backend(mut self, backend: impl DecodeBackend + 'static) -> Self {
        self.backend = Box::new(backend);
        self
    }

    /// The backend this client decodes with.
    pub fn backend(&self) -> &dyn DecodeBackend {
        self.backend.as_ref()
    }

    /// Requests `name` at this client's capacity and decodes the response,
    /// in one call.
    ///
    /// Uses [`ContentServer::fetch`], which resolves the name **once** —
    /// the old `request` + `get` two-step raced concurrent unpublishes.
    pub fn fetch_and_decode(
        &self,
        server: &ContentServer,
        name: &str,
    ) -> Result<Vec<u8>, RecoilError> {
        let (transmission, item) = server.fetch(name, self.parallel_segments)?;
        self.decode(&item.stream, &transmission, &item.model)
    }

    /// Decodes a served transmission against the shared bitstream.
    ///
    /// Wire-parses the metadata bytes (what a remote client would do) and
    /// runs the parallel three-phase decoder.
    pub fn decode(
        &self,
        stream: &EncodedStream,
        transmission: &Transmission,
        model: &StaticModelProvider,
    ) -> Result<Vec<u8>, RecoilError> {
        if !self.backend.is_available() {
            return Err(RecoilError::BackendUnavailable {
                backend: self.backend.name(),
            });
        }
        let metadata = metadata_from_bytes(transmission.metadata_bytes())?;
        let mut out = vec![0u8; stream.num_symbols as usize];
        let req = DecodeRequest {
            stream,
            metadata: &metadata,
            model,
        };
        self.backend.decode_u8(&req, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ContentServer;
    use recoil_core::codec::{EncoderConfig, ScalarBackend};

    #[test]
    fn end_to_end_content_delivery() {
        let data: Vec<u8> = (0..500_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 23) as u8)
            .collect();
        let server = ContentServer::new();
        let config = EncoderConfig {
            max_segments: 256,
            ..EncoderConfig::default()
        };
        server.publish("video", &data, &config).unwrap();

        // A beefy client and a budget client request the same content —
        // one atomic fetch-and-decode each.
        for threads in [1usize, 2, 8] {
            let client = Client::new(threads);
            let decoded = client.fetch_and_decode(&server, "video").unwrap();
            assert_eq!(decoded, data, "threads={threads}");
        }

        // A forced-scalar client agrees bit for bit.
        let scalar = Client::new(1).with_backend(ScalarBackend);
        assert_eq!(scalar.fetch_and_decode(&server, "video").unwrap(), data);

        // The budget client transferred fewer bytes than the beefy one.
        let small = server.request("video", 1).unwrap();
        let large = server.request("video", 256).unwrap();
        assert!(small.total_bytes() < large.total_bytes());
    }
}
