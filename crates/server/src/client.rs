//! The decoding client: a machine with a given parallel capacity.

use crate::server::Transmission;
use recoil_core::metadata_from_bytes;
use recoil_models::StaticModelProvider;
use recoil_parallel::ThreadPool;
use recoil_rans::{EncodedStream, RansError};
use recoil_simd::{decode_recoil_simd, Kernel};

/// A client decodes with however many threads it has and the best SIMD
/// kernel its CPU offers — the server never needs to know more than the
/// segment count the client asked for.
pub struct Client {
    pool: Option<ThreadPool>,
    kernel: Kernel,
    /// Parallel segments this client requests from servers.
    pub parallel_segments: u64,
}

impl Client {
    /// Client with `threads` decode threads.
    pub fn new(threads: usize) -> Self {
        let pool = (threads > 1).then(|| ThreadPool::new(threads - 1));
        Self { pool, kernel: Kernel::best(), parallel_segments: threads as u64 }
    }

    /// Forces a specific kernel (tests / measurements).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        assert!(kernel.is_available());
        self.kernel = kernel;
        self
    }

    /// Decodes a served transmission against the shared bitstream.
    ///
    /// Wire-parses the metadata bytes (what a remote client would do) and
    /// runs the parallel three-phase decoder.
    pub fn decode(
        &self,
        stream: &EncodedStream,
        transmission: &Transmission,
        model: &StaticModelProvider,
    ) -> Result<Vec<u8>, RansError> {
        let metadata = metadata_from_bytes(&transmission.metadata_bytes)?;
        let mut out = vec![0u8; stream.num_symbols as usize];
        decode_recoil_simd(self.kernel, stream, &metadata, model, self.pool.as_ref(), &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ContentServer;

    #[test]
    fn end_to_end_content_delivery() {
        let data: Vec<u8> =
            (0..500_000u32).map(|i| (i.wrapping_mul(2654435761) >> 23) as u8).collect();
        let mut server = ContentServer::new();
        server.publish("video", &data, 11, 32, 256);

        // A beefy client and a budget client request the same content.
        for threads in [1usize, 2, 8] {
            let client = Client::new(threads);
            let t = server.request("video", client.parallel_segments).unwrap();
            let item = server.get("video").unwrap();
            let decoded = client.decode(&item.stream, &t, &item.model).unwrap();
            assert_eq!(decoded, data, "threads={threads}");
        }

        // The budget client transferred fewer bytes than the beefy one.
        let small = server.request("video", 1).unwrap();
        let large = server.request("video", 256).unwrap();
        assert!(small.total_bytes() < large.total_bytes());
    }
}
