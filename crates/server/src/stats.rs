//! Serving-layer observability: lock-free counters and their snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal counter block; every field is bumped with relaxed atomics on
/// the hot path (no lock, no contention beyond the cache line).
#[derive(Debug, Default)]
pub(crate) struct StatsCounters {
    pub publishes: AtomicU64,
    pub requests: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_evictions: AtomicU64,
    pub bytes_served: AtomicU64,
    /// Gauge, not a counter: transports increment on accept and decrement
    /// on close, so the snapshot shows currently open connections.
    pub active_connections: AtomicU64,
    pub rejected_connections: AtomicU64,
    pub evicted_connections: AtomicU64,
    /// Gauge: requests queued for dispatch workers, published by the
    /// transport's event loop.
    pub queue_depth: AtomicU64,
    /// Gauge: connection slots still available in the transport's slab.
    pub open_slots: AtomicU64,
}

impl StatsCounters {
    /// Point-in-time copy of every counter.
    ///
    /// Counters are read individually with relaxed ordering: under load the
    /// snapshot is not a single global instant, but each value is exact and
    /// monotone, and once the server quiesces the arithmetic invariants
    /// hold exactly (`cache_hits + cache_misses` = successfully served
    /// requests).
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            publishes: self.publishes.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            bytes_served: self.bytes_served.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            evicted_connections: self.evicted_connections.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            open_slots: self.open_slots.load(Ordering::Relaxed),
        }
    }
}

/// Stores a gauge's current value (gauges go up *and* down, unlike the
/// monotone counters).
pub(crate) fn set(gauge: &AtomicU64, value: u64) {
    gauge.store(value, Ordering::Relaxed);
}

/// Bumps one counter by one.
pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Adds `n` to one counter.
pub(crate) fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

/// A snapshot of the server's serving counters
/// (see [`crate::ContentServer::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Successful content publications.
    pub publishes: u64,
    /// Total `request` calls, including ones that returned an error.
    pub requests: u64,
    /// Requests served straight from a content item's tier cache.
    pub cache_hits: u64,
    /// Requests that had to combine (and serialize) metadata on demand.
    pub cache_misses: u64,
    /// Cached tiers dropped to make room for newly served ones.
    pub cache_evictions: u64,
    /// Total response bytes served (bitstream payload + shrunk metadata)
    /// across every successful request, in-process or over a transport.
    pub bytes_served: u64,
    /// Currently open transport connections (zero for a purely in-process
    /// server); maintained by `recoil-net`'s connection handlers.
    pub active_connections: u64,
    /// Connections turned away at accept because the transport was at its
    /// connection capacity.
    pub rejected_connections: u64,
    /// Connections evicted by the transport for missing a progress
    /// deadline (slow-loris peers, stalled writes).
    pub evicted_connections: u64,
    /// Gauge: requests currently queued for the transport's dispatch
    /// workers (zero for a purely in-process server).
    pub queue_depth: u64,
    /// Gauge: connection slots still open in the transport's slab (zero
    /// for a purely in-process server, which has no slab).
    pub open_slots: u64,
}

impl ServerStats {
    /// Fraction of served requests answered from the tier cache
    /// (`0.0` when nothing has been served yet).
    pub fn hit_rate(&self) -> f64 {
        let served = self.cache_hits + self.cache_misses;
        if served == 0 {
            0.0
        } else {
            self.cache_hits as f64 / served as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        assert_eq!(ServerStats::default().hit_rate(), 0.0);
        let s = ServerStats {
            cache_hits: 9,
            cache_misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn snapshot_copies_counters() {
        let c = StatsCounters::default();
        bump(&c.requests);
        bump(&c.requests);
        bump(&c.cache_hits);
        let s = c.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.publishes, 0);
    }
}
