//! Content-delivery simulation (paper §1, §3.3).
//!
//! "We consider the use case where the client requests content, and also
//! attaches its parallel capacity inside the request header; the server
//! receives the request, shrinks down the metadata in real-time, and serves
//! the bitstream and the shrunk metadata to the decoder. No compression
//! rate is wasted to provide unnecessary parallelism."
//!
//! The server encodes each item **once**, at the maximum parallelism it
//! intends to support (the Large variation). Every client request is served
//! from that single artifact: the bitstream bytes never change, only the
//! metadata is filtered — a microseconds-scale, allocation-light operation
//! measured and exposed per request.

mod client;
mod server;

pub use client::Client;
pub use server::{ContentServer, StoredContent, Transmission};
