//! Content-delivery service (paper §1, §3.3).
//!
//! "We consider the use case where the client requests content, and also
//! attaches its parallel capacity inside the request header; the server
//! receives the request, shrinks down the metadata in real-time, and serves
//! the bitstream and the shrunk metadata to the decoder. No compression
//! rate is wasted to provide unnecessary parallelism."
//!
//! The server encodes each item **once**, at the maximum parallelism it
//! intends to support (the Large variation). Every client request is served
//! from that single artifact: the bitstream bytes never change, only the
//! metadata is filtered.
//!
//! ## Concurrency model
//!
//! [`ContentServer`] is built to be shared across request threads — every
//! method takes `&self`:
//!
//! * the item store is split over `N` shards (default 16), each an
//!   independent `RwLock<HashMap>` keyed by a hash of the content name.
//!   Requests take a shard read lock for the duration of one `HashMap`
//!   lookup; publishing encodes **outside** any lock and write-locks only
//!   the owning shard for the final insert, so a slow publish never stalls
//!   reads — not even of other names on the same shard;
//! * [`ContentServer::request_batch`] resolves many `(name, capacity)`
//!   pairs over one persistent [`recoil_parallel::ThreadPool`] created with
//!   the server and reused for every batch.
//!
//! ## Shrunk-metadata caching and capacity tiers
//!
//! Real-world capacities cluster into a handful of device classes, so each
//! published item carries a small LRU cache (default 8 entries) of the
//! metadata tiers it has actually served: the combined [`RecoilMetadata`]
//! **and** its serialized wire bytes, behind one `Arc` shared by every
//! response.
//!
//! The cache key is the **post-clamp segment count** — the tier actually
//! served, not the capacity the client asked for. Content encoded with 128
//! segments serves a 10 000-segment request and a 128-segment request from
//! the same entry. A hit costs two atomic counter bumps and an `Arc` clone;
//! only a miss pays the real-time combine + serialize, and its
//! [`Transmission::combine_nanos`] records exactly that cost (hits report
//! zero). Hit/miss/eviction counters are exposed as a [`ServerStats`]
//! snapshot via [`ContentServer::stats`].
//!
//! [`RecoilMetadata`]: recoil_core::RecoilMetadata

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

mod cache;
mod client;
mod server;
mod stats;

pub use cache::ShrunkTier;
pub use client::Client;
pub use server::{ContentServer, ServerConfig, StoredContent, Transmission};
pub use stats::ServerStats;
