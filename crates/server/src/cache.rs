//! Per-content LRU cache of shrunk metadata tiers.
//!
//! The server's real-time combine (§3.3) is lightweight but not free: it
//! clones the kept split points and re-serializes the wire bytes on every
//! request. Client capacities are heavily clustered in practice (a handful
//! of device classes), so each published item carries a small LRU cache of
//! the tiers it has actually served.
//!
//! The cache key is the **post-clamp** segment count — the tier actually
//! served, not the capacity the client asked for. A request for 10 000
//! segments against content encoded with 128 serves the 128-segment tier,
//! and therefore shares a cache entry with an explicit 128-segment request.

use crate::stats::{bump, StatsCounters};
use parking_lot::Mutex;
use recoil_core::RecoilMetadata;
use std::sync::Arc;

/// One shrunk, ready-to-serve metadata tier: the combined metadata and its
/// serialized wire bytes, shared by every response for this tier.
#[derive(Debug)]
pub struct ShrunkTier {
    /// The tier's segment count (post-clamp: `min(requested, available)`).
    pub segments: u64,
    /// Combined metadata (parsed form, for in-process clients).
    pub metadata: RecoilMetadata,
    /// Serialized metadata, what goes on the wire.
    pub metadata_bytes: Vec<u8>,
}

/// A small LRU (most-recently-served first) of [`ShrunkTier`]s.
///
/// Capacities are tiny (default 8) and entries are `Arc`-shared, so the
/// inner structure is a plain vector under a mutex: lookup is a short scan,
/// promotion a rotate — cheaper than any linked-list bookkeeping at this
/// size, and the lock is held only for the scan, never during a combine.
#[derive(Debug)]
pub(crate) struct TierCache {
    capacity: usize,
    /// `(segments, tier)` pairs, most recently used first.
    tiers: Mutex<Vec<(u64, Arc<ShrunkTier>)>>,
}

impl TierCache {
    /// Cache holding at most `capacity` tiers (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            tiers: Mutex::new(Vec::new()),
        }
    }

    /// Looks up `segments`, promoting the entry to most-recently-used.
    pub fn get(&self, segments: u64) -> Option<Arc<ShrunkTier>> {
        let mut tiers = self.tiers.lock();
        let idx = tiers.iter().position(|(t, _)| *t == segments)?;
        // Promote: rotate the hit to the front, preserving relative order
        // of everything in between.
        tiers[..=idx].rotate_right(1);
        Some(Arc::clone(&tiers[0].1))
    }

    /// Inserts `tier` as most-recently-used, evicting the least recently
    /// used entry when full, and bumps `stats.cache_evictions` accordingly.
    ///
    /// Two threads can miss the same tier concurrently and both compute it
    /// (combining happens outside the cache lock on purpose); whichever
    /// insert lands second adopts the already-cached entry, so every caller
    /// ends up sharing one allocation. Returns the entry to serve.
    pub fn insert(&self, tier: Arc<ShrunkTier>, stats: &StatsCounters) -> Arc<ShrunkTier> {
        let mut tiers = self.tiers.lock();
        if let Some(idx) = tiers.iter().position(|(t, _)| t == &tier.segments) {
            tiers[..=idx].rotate_right(1);
            return Arc::clone(&tiers[0].1);
        }
        if tiers.len() == self.capacity {
            tiers.pop();
            bump(&stats.cache_evictions);
        }
        tiers.insert(0, (tier.segments, Arc::clone(&tier)));
        tier
    }

    /// Number of currently cached tiers.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.tiers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier(segments: u64) -> Arc<ShrunkTier> {
        Arc::new(ShrunkTier {
            segments,
            metadata: RecoilMetadata {
                ways: 1,
                quant_bits: 11,
                num_symbols: 10,
                num_words: 10,
                splits: vec![],
            },
            metadata_bytes: vec![0; segments as usize],
        })
    }

    #[test]
    fn lru_evicts_least_recently_served() {
        let stats = StatsCounters::default();
        let cache = TierCache::new(2);
        cache.insert(tier(1), &stats);
        cache.insert(tier(2), &stats);
        assert!(cache.get(1).is_some()); // 1 is now MRU
        cache.insert(tier(3), &stats); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(stats.snapshot().cache_evictions, 1);
    }

    #[test]
    fn racing_inserts_converge_on_one_entry() {
        let stats = StatsCounters::default();
        let cache = TierCache::new(4);
        let first = cache.insert(tier(7), &stats);
        let second = cache.insert(tier(7), &stats);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
        assert_eq!(stats.snapshot().cache_evictions, 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let stats = StatsCounters::default();
        let cache = TierCache::new(0);
        cache.insert(tier(1), &stats);
        assert!(cache.get(1).is_some());
        cache.insert(tier(2), &stats);
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some());
    }
}
