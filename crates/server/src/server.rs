//! The encode-once, combine-per-request server.

use crate::cache::{ShrunkTier, TierCache};
use crate::stats::{add, bump, set, ServerStats, StatsCounters};
use parking_lot::{Mutex, RwLock};
use recoil_core::codec::{Codec, EncoderConfig};
use recoil_core::{
    metadata_to_bytes, try_combine_splits, update_crc32, RecoilContainer, RecoilError,
    RecoilMetadata,
};
use recoil_models::StaticModelProvider;
use recoil_parallel::ThreadPool;
use recoil_rans::EncodedStream;
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One published content item: the Large-variation artifact.
#[derive(Debug)]
pub struct StoredContent {
    /// The single encoded bitstream (shared by every response).
    pub stream: Arc<EncodedStream>,
    /// Full metadata at maximum supported parallelism.
    pub metadata: RecoilMetadata,
    /// The static model clients decode with (transmitted out of band; its
    /// size is identical across variations so the paper's size tables
    /// exclude it).
    pub model: Arc<StaticModelProvider>,
    /// Shrunk-metadata tiers this item has served (LRU).
    cache: TierCache,
    /// Memoized CRC-32 of the wire payload (every word's LE bytes); see
    /// [`StoredContent::payload_crc32`].
    payload_crc: OnceLock<u32>,
    /// Requests served for this item (any tier, hit or miss) — the
    /// per-name popularity signal hot-key promotion reads through
    /// [`ContentServer::hit_counts`].
    hits: std::sync::atomic::AtomicU64,
}

impl StoredContent {
    /// The maximum parallelism this item was encoded for; requests beyond
    /// it are clamped to this tier.
    pub fn max_segments(&self) -> u64 {
        self.metadata.num_segments()
    }

    /// CRC-32 over the item's whole wire payload: every bitstream word's
    /// little-endian bytes, in stream order.
    ///
    /// The word stream is shared by every metadata tier, so this value is
    /// identical for every response of the item — it is computed once on
    /// first use and memoized, taking a full-stream checksum off every
    /// transport request's critical path.
    pub fn payload_crc32(&self) -> u32 {
        *self.payload_crc.get_or_init(|| {
            let mut state = 0xFFFF_FFFFu32;
            let mut scratch = [0u8; 4096];
            for block in self.stream.words.chunks(scratch.len() / 2) {
                for (bytes, &w) in scratch.chunks_exact_mut(2).zip(block) {
                    bytes.copy_from_slice(&w.to_le_bytes());
                }
                state = update_crc32(state, &scratch[..block.len() * 2]);
            }
            state ^ 0xFFFF_FFFF
        })
    }

    /// Requests served for this item so far (any tier, cached or combined).
    pub fn hit_count(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn note_hit(&self) {
        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// What the server puts on the wire for one request.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// Shared bitstream payload bytes.
    pub stream_bytes: u64,
    /// The served metadata tier, shared with the item's cache (and with
    /// every other response for the same tier).
    pub tier: Arc<ShrunkTier>,
    /// Wall-clock nanoseconds the real-time combine + serialize took
    /// (zero when the tier came out of the cache).
    pub combine_nanos: u128,
    /// Whether this response was served from the tier cache.
    pub cache_hit: bool,
}

impl Transmission {
    /// Parsed metadata for the client's capability (for in-process clients).
    pub fn metadata(&self) -> &RecoilMetadata {
        &self.tier.metadata
    }

    /// Serialized metadata bytes, what a remote client would wire-parse.
    pub fn metadata_bytes(&self) -> &[u8] {
        &self.tier.metadata_bytes
    }

    /// Total bytes transferred for this response.
    pub fn total_bytes(&self) -> u64 {
        self.stream_bytes + self.tier.metadata_bytes.len() as u64
    }
}

/// RAII claim on a name in [`ContentServer`]'s in-flight publish set; the
/// drop releases the name on every exit path, so a failed publish (bad
/// config, unsupported symbol) frees it for retry.
struct InflightGuard<'a> {
    set: &'a Mutex<HashSet<String>>,
    name: &'a str,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.set.lock().remove(self.name);
    }
}

/// Construction knobs for [`ContentServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Store shards (each an independent `RwLock<HashMap>`); publishes only
    /// write-lock one shard, so reads elsewhere never block. Minimum 1.
    pub shards: usize,
    /// Shrunk-metadata tiers cached per published item (LRU). Minimum 1.
    pub tier_cache_capacity: usize,
    /// Worker threads of the pool backing [`ContentServer::request_batch`]
    /// (the calling thread participates too). The pool is created once per
    /// server and reused by every batch — no per-call thread churn.
    pub batch_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        Self {
            shards: 16,
            tier_cache_capacity: 8,
            batch_workers: cpus.saturating_sub(1),
        }
    }
}

/// In-memory content server with decoder-adaptive responses.
///
/// All methods take `&self`: the store is sharded under reader-writer
/// locks, the tier caches and counters use interior mutability, so one
/// server instance is shared freely across request threads.
pub struct ContentServer {
    shards: Vec<RwLock<HashMap<String, Arc<StoredContent>>>>,
    /// Names with a publish currently encoding. Claimed before the encode
    /// starts, so a racing duplicate publish fails fast instead of running
    /// the whole (expensive, pooled) encode and losing at the store insert.
    publishing: Mutex<HashSet<String>>,
    /// Persistent pool for [`ContentServer::request_batch`] and the
    /// segment-parallel encode behind [`ContentServer::publish`].
    pool: ThreadPool,
    stats: StatsCounters,
    tier_cache_capacity: usize,
    /// Optional pipeline telemetry, attached once by the transport layer
    /// (or a bench harness). Never replaces [`StatsCounters`] — STATS keeps
    /// its fixed wire shape; telemetry adds distributions on top.
    telemetry: OnceLock<Arc<recoil_telemetry::Telemetry>>,
    /// The attached handle's level as a plain byte (0 = none/off,
    /// 1 = counters, 2 = trace), so the per-request hit path decides
    /// whether to record with one owned-line load instead of chasing the
    /// `OnceLock -> Arc -> level` pointers on every request.
    tel_level: std::sync::atomic::AtomicU8,
}

impl Default for ContentServer {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentServer {
    /// Empty server with the default configuration (16 shards, 8 cached
    /// tiers per item, machine-sized batch pool).
    pub fn new() -> Self {
        Self::with_config(ServerConfig::default())
    }

    /// Empty server with explicit sharding/caching/pool sizes.
    pub fn with_config(config: ServerConfig) -> Self {
        let shards = config.shards.max(1);
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            publishing: Mutex::new(HashSet::new()),
            pool: ThreadPool::new(config.batch_workers),
            stats: StatsCounters::default(),
            tier_cache_capacity: config.tier_cache_capacity.max(1),
            telemetry: OnceLock::new(),
            tel_level: std::sync::atomic::AtomicU8::new(0),
        }
    }

    /// Attaches a telemetry handle; the serve path then records tier-cache
    /// hit/miss segment distributions and combine latencies into it. First
    /// attach wins (idempotent for the common single-transport case).
    pub fn attach_telemetry(&self, telemetry: Arc<recoil_telemetry::Telemetry>) {
        if self.telemetry.set(Arc::clone(&telemetry)).is_ok() {
            let level = if telemetry.trace_enabled() {
                2
            } else if telemetry.counters_enabled() {
                1
            } else {
                0
            };
            self.tel_level
                .store(level, std::sync::atomic::Ordering::Release);
        }
    }

    /// The attached telemetry handle, if any — handed out so transports and
    /// benches snapshot the same instruments the serve path records into.
    pub fn telemetry(&self) -> Option<&Arc<recoil_telemetry::Telemetry>> {
        self.telemetry.get()
    }

    /// The attached handle, only when it actually records.
    fn tel(&self) -> Option<&recoil_telemetry::Telemetry> {
        self.telemetry
            .get()
            .map(Arc::as_ref)
            .filter(|t| t.counters_enabled())
    }

    /// Tier-cache hit instrumentation for the serving hot loop. The level
    /// check is one relaxed byte load ([`ContentServer::tel_level`]); at
    /// `Counters` the histogram samples 1-in-32 using the already-bumped
    /// hit counter as the phase, at `Trace` every hit records. Exact hit
    /// counts always live in the server's own stats.
    #[inline]
    fn record_tier_hit(&self, hits: u64, segments: u64) {
        let level = self.tel_level.load(std::sync::atomic::Ordering::Relaxed);
        if level >= 2 || (level == 1 && hits & 31 == 0) {
            if let Some(t) = self.telemetry.get() {
                t.hists.tier_hit_segments.record(segments);
            }
        }
    }

    /// The shard owning `name`.
    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Arc<StoredContent>>> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[h.finish() as usize % self.shards.len()]
    }

    /// Encodes `data` once under `config` (lane width, split budget,
    /// quantization) and publishes it as `name`. The encode itself is
    /// segment-parallel over the server's pool when the input is large
    /// enough; the stored bytes are identical to a serial encode either way.
    ///
    /// Encoding happens outside any store lock — a slow publish never stalls
    /// requests, not even for other names on the same shard.
    ///
    /// Publishing over an existing name is rejected with
    /// [`RecoilError::AlreadyPublished`] — republishing would silently
    /// invalidate bitstreams clients may still be downloading. Use
    /// [`ContentServer::unpublish`] first to replace content. Two *racing*
    /// publishes of one name are also arbitrated here: the name is claimed
    /// in an in-flight set before any encoding work, so the loser fails
    /// fast instead of burning a full encode it can never store.
    pub fn publish(
        &self,
        name: &str,
        data: &[u8],
        config: &EncoderConfig,
    ) -> Result<Arc<StoredContent>, RecoilError> {
        let taken = || RecoilError::AlreadyPublished {
            name: name.to_string(),
        };
        let _inflight = {
            let mut publishing = self.publishing.lock();
            if self.shard(name).read().contains_key(name) || publishing.contains(name) {
                return Err(taken());
            }
            publishing.insert(name.to_string());
            InflightGuard {
                set: &self.publishing,
                name,
            }
        };
        let codec = Codec::from_config(config.clone())?;
        let t0 = Instant::now();
        let encoded = codec.encode_pooled(data, &self.pool)?;
        if let Some(t) = self.tel() {
            t.hists
                .encode_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let RecoilContainer { stream, metadata } = encoded.container;
        let content = Arc::new(StoredContent {
            stream: Arc::new(stream),
            metadata,
            model: Arc::new(encoded.model),
            cache: TierCache::new(self.tier_cache_capacity),
            payload_crc: OnceLock::new(),
            hits: std::sync::atomic::AtomicU64::new(0),
        });
        match self.shard(name).write().entry(name.to_string()) {
            // Unreachable while every insert goes through the in-flight
            // claim above; kept as a cheap belt-and-braces re-check.
            Entry::Occupied(_) => Err(taken()),
            Entry::Vacant(v) => {
                v.insert(Arc::clone(&content));
                bump(&self.stats.publishes);
                Ok(content)
            }
        }
    }

    /// Removes published content, returning whether it existed. In-flight
    /// responses keep their `Arc`s; the bitstream outlives the unpublish.
    pub fn unpublish(&self, name: &str) -> bool {
        self.shard(name).write().remove(name).is_some()
    }

    /// Published item lookup.
    pub fn get(&self, name: &str) -> Option<Arc<StoredContent>> {
        self.shard(name).read().get(name).cloned()
    }

    /// Number of published items across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether nothing is published.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Per-name request tallies across every published item, unsorted.
    /// This is the hot-key signal a replication router polls to decide
    /// which names deserve promotion onto more replicas; each count is
    /// exact (bumped on every served request, cached or combined).
    pub fn hit_counts(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.read();
            out.extend(
                shard
                    .iter()
                    .map(|(name, item)| (name.clone(), item.hit_count())),
            );
        }
        out
    }

    /// Snapshot of the serving counters (cache hits/misses/evictions,
    /// publishes, requests).
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Threads a [`ContentServer::request_batch`] call fans out over.
    pub fn batch_threads(&self) -> usize {
        self.pool.threads()
    }

    /// Serves `name` for a client that can decode `parallel_segments`
    /// segments in parallel: resolves the capacity to a tier (clamped to
    /// the item's encoded maximum) and serves it from the item's LRU cache,
    /// combining splits in real time only on a miss — never touching the
    /// bitstream either way.
    ///
    /// `parallel_segments` is validated at this API boundary: a request for
    /// zero segments is a malformed client header, reported as
    /// [`RecoilError::InvalidConfig`] rather than silently clamped deep in
    /// the combine path.
    pub fn request(&self, name: &str, parallel_segments: u64) -> Result<Transmission, RecoilError> {
        self.fetch(name, parallel_segments).map(|(t, _)| t)
    }

    /// Like [`ContentServer::request`], but also returns the
    /// [`StoredContent`] handle the transmission was served from — in **one
    /// atomic lookup**.
    ///
    /// `request` followed by a separate [`ContentServer::get`] is a TOCTOU
    /// hazard: a concurrent [`ContentServer::unpublish`] between the two
    /// calls hands the caller a `Transmission` with no content to decode
    /// against. `fetch` resolves the name exactly once; the returned `Arc`s
    /// stay valid however the store changes afterwards.
    pub fn fetch(
        &self,
        name: &str,
        parallel_segments: u64,
    ) -> Result<(Transmission, Arc<StoredContent>), RecoilError> {
        bump(&self.stats.requests);
        if parallel_segments == 0 {
            return Err(RecoilError::config(
                "parallel_segments",
                "a client must request at least one decode segment",
            ));
        }
        let item = self.get(name).ok_or_else(|| RecoilError::NotFound {
            name: name.to_string(),
        })?;
        let transmission = self.serve_item(&item, parallel_segments)?;
        Ok((transmission, item))
    }

    /// The cache-hit-only half of [`ContentServer::fetch`], for callers
    /// that must not block: `Ok(Some(..))` is a fully served response,
    /// `Ok(None)` means the tier is not cached and serving it would run a
    /// real-time combine — the caller should then run [`ContentServer::fetch`]
    /// somewhere it may take its time (e.g. a dispatch worker).
    ///
    /// Counters stay exact across the two-call flow: this method bumps
    /// `requests` (and `cache_hits`/`bytes_served`) only on terminal paths
    /// (hit or error). On `Ok(None)` nothing is counted — the follow-up
    /// `fetch` then counts the request and its miss, so
    /// `cache_hits + cache_misses` still equals successfully served
    /// requests.
    pub fn fetch_cached(
        &self,
        name: &str,
        parallel_segments: u64,
    ) -> Result<Option<(Transmission, Arc<StoredContent>)>, RecoilError> {
        if parallel_segments == 0 {
            bump(&self.stats.requests);
            return Err(RecoilError::config(
                "parallel_segments",
                "a client must request at least one decode segment",
            ));
        }
        let Some(item) = self.get(name) else {
            bump(&self.stats.requests);
            return Err(RecoilError::NotFound {
                name: name.to_string(),
            });
        };
        let segments = parallel_segments.min(item.max_segments());
        let Some(tier) = item.cache.get(segments) else {
            return Ok(None);
        };
        bump(&self.stats.requests);
        item.note_hit();
        let hits = self
            .stats
            .cache_hits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.record_tier_hit(hits, segments);
        let transmission = Transmission {
            stream_bytes: item.stream.payload_bytes(),
            tier,
            combine_nanos: 0,
            cache_hit: true,
        };
        add(&self.stats.bytes_served, transmission.total_bytes());
        Ok(Some((transmission, item)))
    }

    /// Serves one tier from an already-resolved item (the tail of `fetch`).
    fn serve_item(
        &self,
        item: &Arc<StoredContent>,
        parallel_segments: u64,
    ) -> Result<Transmission, RecoilError> {
        let stream_bytes = item.stream.payload_bytes();
        item.note_hit();
        // Cache by the tier actually served: a request beyond capacity and
        // an exact maximum-capacity request share one entry.
        let segments = parallel_segments.min(item.max_segments());
        if let Some(tier) = item.cache.get(segments) {
            let hits = self
                .stats
                .cache_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.record_tier_hit(hits, segments);
            let transmission = Transmission {
                stream_bytes,
                tier,
                combine_nanos: 0,
                cache_hit: true,
            };
            add(&self.stats.bytes_served, transmission.total_bytes());
            return Ok(transmission);
        }
        let t0 = Instant::now();
        let metadata = try_combine_splits(&item.metadata, segments)?;
        let metadata_bytes = metadata_to_bytes(&metadata);
        let combine_nanos = t0.elapsed().as_nanos();
        // Counted only after the combine succeeds, keeping
        // `cache_hits + cache_misses` equal to successfully served requests
        // even if stored metadata ever fails validation.
        bump(&self.stats.cache_misses);
        if let Some(t) = self.tel() {
            t.hists.tier_miss_segments.record(segments);
            t.hists
                .combine_ns
                .record(u64::try_from(combine_nanos).unwrap_or(u64::MAX));
        }
        let tier = item.cache.insert(
            Arc::new(ShrunkTier {
                segments,
                metadata,
                metadata_bytes,
            }),
            &self.stats,
        );
        let transmission = Transmission {
            stream_bytes,
            tier,
            combine_nanos,
            cache_hit: false,
        };
        add(&self.stats.bytes_served, transmission.total_bytes());
        Ok(transmission)
    }

    /// Records a transport connection being accepted (bumps the
    /// `active_connections` gauge). Called by `recoil-net`'s handlers.
    pub fn connection_opened(&self) {
        add(&self.stats.active_connections, 1);
    }

    /// Records a transport connection closing (decrements the gauge).
    pub fn connection_closed(&self) {
        self.stats
            .active_connections
            .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records a connection turned away at accept for capacity.
    pub fn connection_rejected(&self) {
        bump(&self.stats.rejected_connections);
    }

    /// Records a connection evicted for missing a progress deadline.
    pub fn connection_evicted(&self) {
        bump(&self.stats.evicted_connections);
    }

    /// Publishes the transport's dispatch-queue depth gauge.
    pub fn set_queue_depth(&self, depth: u64) {
        set(&self.stats.queue_depth, depth);
    }

    /// Publishes the transport's open-connection-slots gauge.
    pub fn set_open_slots(&self, slots: u64) {
        set(&self.stats.open_slots, slots);
    }

    /// Resolves many `(name, capacity)` pairs concurrently over the
    /// server's persistent thread pool, returning one result per request in
    /// input order. Failures are per-entry — one unknown name does not poison
    /// the batch.
    pub fn request_batch<N: AsRef<str> + Sync>(
        &self,
        requests: &[(N, u64)],
    ) -> Vec<Result<Transmission, RecoilError>> {
        let slots: Vec<Mutex<Option<Result<Transmission, RecoilError>>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        self.pool.run(requests.len(), |i| {
            let (name, capacity) = &requests[i];
            *slots[i].lock() = Some(self.request(name.as_ref(), *capacity));
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("pool fills every batch slot"))
            .collect()
    }
}

impl std::fmt::Debug for ContentServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentServer")
            .field("items", &self.len())
            .field("shards", &self.shards.len())
            .field("tier_cache_capacity", &self.tier_cache_capacity)
            .field("batch_threads", &self.pool.threads())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sample(len: usize) -> Vec<u8> {
        (0..len as u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 23) as u8)
            .collect()
    }

    fn config(max_segments: u64) -> EncoderConfig {
        EncoderConfig {
            max_segments,
            ..EncoderConfig::default()
        }
    }

    /// Small server config so tests don't spin up machine-sized pools.
    fn small_server() -> ContentServer {
        ContentServer::with_config(ServerConfig {
            shards: 4,
            tier_cache_capacity: 8,
            batch_workers: 3,
        })
    }

    #[test]
    fn publish_then_request_scales_metadata() {
        let data = sample(400_000);
        let server = small_server();
        server.publish("movie", &data, &config(128)).unwrap();
        let big = server.request("movie", 128).unwrap();
        let small = server.request("movie", 4).unwrap();
        assert_eq!(big.stream_bytes, small.stream_bytes, "bitstream is shared");
        assert!(big.metadata_bytes().len() > 10 * small.metadata_bytes().len());
        assert_eq!(small.metadata().num_segments(), 4);
    }

    #[test]
    fn request_beyond_capacity_serves_max_and_shares_cache_tier() {
        let data = sample(100_000);
        let server = small_server();
        server.publish("x", &data, &config(16)).unwrap();
        let t = server.request("x", 10_000).unwrap();
        assert_eq!(t.metadata().num_segments(), 16);
        assert!(!t.cache_hit);
        // The cache key is the post-clamp tier: an exact 16-segment request
        // (and another absurd one) hit the same entry, no re-shrink.
        let exact = server.request("x", 16).unwrap();
        let huge = server.request("x", u64::MAX).unwrap();
        assert!(exact.cache_hit && huge.cache_hit);
        assert!(Arc::ptr_eq(&t.tier, &exact.tier));
        assert!(Arc::ptr_eq(&t.tier, &huge.tier));
        let s = server.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (2, 1));
    }

    #[test]
    fn repeated_capacity_hits_the_lru() {
        let data = sample(200_000);
        let server = small_server();
        server.publish("movie", &data, &config(64)).unwrap();
        let first = server.request("movie", 8).unwrap();
        assert!(!first.cache_hit);
        assert!(first.combine_nanos > 0);
        let second = server.request("movie", 8).unwrap();
        assert!(second.cache_hit, "repeated capacity must hit the LRU");
        assert_eq!(second.combine_nanos, 0, "no re-shrink on a hit");
        assert!(Arc::ptr_eq(&first.tier, &second.tier), "tiers are shared");
        let s = server.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.requests, 2);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_counts_track_per_name_popularity() {
        let server = small_server();
        server.publish("hot", &sample(60_000), &config(8)).unwrap();
        server.publish("cold", &sample(60_000), &config(8)).unwrap();
        for _ in 0..5 {
            server.request("hot", 4).unwrap();
        }
        server.request("cold", 4).unwrap();
        // A failed lookup counts nothing.
        assert!(server.request("missing", 4).is_err());
        let mut counts = server.hit_counts();
        counts.sort();
        assert_eq!(counts, vec![("cold".into(), 1), ("hot".into(), 5)]);
        // fetch_cached hit paths count too.
        server.fetch_cached("hot", 4).unwrap().unwrap();
        assert_eq!(server.get("hot").unwrap().hit_count(), 6);
    }

    #[test]
    fn tier_cache_evicts_and_counts() {
        let data = sample(150_000);
        let server = ContentServer::with_config(ServerConfig {
            shards: 2,
            tier_cache_capacity: 2,
            batch_workers: 0,
        });
        server.publish("x", &data, &config(64)).unwrap();
        for tier in [2u64, 4, 8, 16] {
            server.request("x", tier).unwrap();
        }
        let s = server.stats();
        assert_eq!(s.cache_misses, 4);
        assert_eq!(s.cache_evictions, 2, "capacity 2, four distinct tiers");
        // Tier 2 was evicted; re-requesting it is a miss again.
        let again = server.request("x", 2).unwrap();
        assert!(!again.cache_hit);
    }

    #[test]
    fn duplicate_publish_is_rejected_and_preserves_original() {
        let data = sample(50_000);
        let server = small_server();
        server.publish("x", &data, &config(16)).unwrap();
        let before = server.get("x").unwrap().metadata.num_segments();
        let err = match server.publish("x", &data, &config(4)) {
            Err(e) => e,
            Ok(_) => panic!("duplicate publish must be rejected"),
        };
        assert!(matches!(err, RecoilError::AlreadyPublished { ref name } if name == "x"));
        assert_eq!(server.get("x").unwrap().metadata.num_segments(), before);
        assert_eq!(server.stats().publishes, 1, "failed publish not counted");
        // After unpublishing, the name is free again.
        assert!(server.unpublish("x"));
        server.publish("x", &data, &config(4)).unwrap();
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn racing_same_name_publishes_run_exactly_one_encode() {
        // Regression: the old fast-fail read the store *before* encoding,
        // so two concurrent publishes of one name could both pass it, both
        // run the expensive encode, and one would lose only at the final
        // store insert. The in-flight claim makes the loser fail before
        // encoding — observable as exactly one encode_ns sample.
        let data = sample(600_000);
        let server = small_server();
        let telemetry = Arc::new(recoil_telemetry::Telemetry::new(
            recoil_telemetry::TelemetryLevel::Counters,
        ));
        server.attach_telemetry(Arc::clone(&telemetry));
        let barrier = std::sync::Barrier::new(2);
        let outcomes: Vec<Result<_, _>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let (server, data, barrier) = (&server, &data, &barrier);
                    s.spawn(move || {
                        barrier.wait();
                        server.publish("contested", data, &config(32))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let oks = outcomes.iter().filter(|r| r.is_ok()).count();
        assert_eq!(oks, 1, "exactly one publisher wins");
        assert!(outcomes.iter().any(
            |r| matches!(r, Err(RecoilError::AlreadyPublished { name }) if name == "contested")
        ));
        assert_eq!(
            telemetry.snapshot().hist("encode_ns").map(|h| h.count),
            Some(1),
            "the losing publish must fail before encoding"
        );
        // The winner's content is served normally.
        assert!(server.request("contested", 4).is_ok());
    }

    #[test]
    fn failed_publish_releases_the_inflight_claim() {
        // An in-flight claim must not leak when the encode errors out, or
        // the name would be poisoned forever.
        let data = sample(10_000);
        let server = small_server();
        let bad = EncoderConfig {
            quant_bits: 0,
            ..EncoderConfig::default()
        };
        assert!(server.publish("x", &data, &bad).is_err());
        server.publish("x", &data, &config(8)).unwrap();
        assert!(server.get("x").is_some());
    }

    #[test]
    fn invalid_publish_config_is_rejected() {
        let data = sample(10_000);
        let server = small_server();
        let bad = EncoderConfig {
            ways: 0,
            ..EncoderConfig::default()
        };
        assert!(matches!(
            server.publish("x", &data, &bad),
            Err(RecoilError::InvalidConfig { field: "ways", .. })
        ));
        assert!(server.get("x").is_none());
        assert!(server.is_empty());
    }

    #[test]
    fn zero_segment_request_is_invalid() {
        let data = sample(10_000);
        let server = small_server();
        server.publish("x", &data, &config(8)).unwrap();
        assert!(matches!(
            server.request("x", 0),
            Err(RecoilError::InvalidConfig {
                field: "parallel_segments",
                ..
            })
        ));
    }

    #[test]
    fn combine_is_real_time() {
        // §3.3: "this process is very lightweight ... can be done in real
        // time by the content delivery server before data transmission".
        let data = sample(2_000_000);
        let server = small_server();
        server.publish("big", &data, &config(2176)).unwrap();
        let t = server.request("big", 16).unwrap();
        assert!(
            t.combine_nanos < 50_000_000,
            "combine took {} ns — not real-time",
            t.combine_nanos
        );
    }

    #[test]
    fn unknown_content_is_not_found() {
        let server = small_server();
        assert!(matches!(
            server.request("nope", 4),
            Err(RecoilError::NotFound { ref name }) if name == "nope"
        ));
    }

    #[test]
    fn request_batch_preserves_order_and_isolates_failures() {
        let data = sample(120_000);
        let server = small_server();
        server.publish("a", &data, &config(32)).unwrap();
        server.publish("b", &data, &config(8)).unwrap();
        let batch = [
            ("a", 4u64),
            ("missing", 4),
            ("b", 1_000),
            ("a", 4),
            ("b", 0),
        ];
        let results = server.request_batch(&batch);
        assert_eq!(results.len(), batch.len());
        assert_eq!(results[0].as_ref().unwrap().metadata().num_segments(), 4);
        assert!(matches!(
            results[1],
            Err(RecoilError::NotFound { ref name }) if name == "missing"
        ));
        assert_eq!(results[2].as_ref().unwrap().metadata().num_segments(), 8);
        assert_eq!(results[3].as_ref().unwrap().metadata().num_segments(), 4);
        assert!(matches!(results[4], Err(RecoilError::InvalidConfig { .. })));
        // ("a", 4) appears twice: one miss, one hit, whatever the order.
        let s = server.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.requests, 5);
    }

    #[test]
    fn fetch_is_atomic_across_unpublish() {
        let data = sample(80_000);
        let server = small_server();
        server.publish("x", &data, &config(16)).unwrap();
        // The returned handles survive an unpublish that lands immediately
        // after — the hazard the two-call request+get flow had.
        let (t, item) = server.fetch("x", 4).unwrap();
        assert!(server.unpublish("x"));
        assert!(server.get("x").is_none(), "name is gone from the store");
        assert_eq!(t.metadata().num_segments(), 4);
        assert_eq!(item.max_segments(), 16);
        assert_eq!(t.stream_bytes, item.stream.payload_bytes());
        // And fetching the now-unpublished name is a clean NotFound.
        assert!(matches!(
            server.fetch("x", 4),
            Err(RecoilError::NotFound { .. })
        ));
    }

    #[test]
    fn bytes_served_and_connection_gauge_are_tracked() {
        let data = sample(90_000);
        let server = small_server();
        server.publish("x", &data, &config(8)).unwrap();
        assert_eq!(server.stats().bytes_served, 0);
        let a = server.request("x", 2).unwrap();
        let b = server.request("x", 8).unwrap();
        let c = server.request("x", 2).unwrap(); // cache hit counts too
        assert!(c.cache_hit);
        assert_eq!(
            server.stats().bytes_served,
            a.total_bytes() + b.total_bytes() + c.total_bytes()
        );
        // Failed requests serve no bytes.
        let before = server.stats().bytes_served;
        assert!(server.request("missing", 2).is_err());
        assert_eq!(server.stats().bytes_served, before);

        assert_eq!(server.stats().active_connections, 0);
        server.connection_opened();
        server.connection_opened();
        assert_eq!(server.stats().active_connections, 2);
        server.connection_closed();
        assert_eq!(server.stats().active_connections, 1);
        server.connection_closed();
        assert_eq!(server.stats().active_connections, 0);
    }

    #[test]
    fn fetch_cached_hits_only_and_keeps_counters_exact() {
        let data = sample(80_000);
        let server = small_server();
        server.publish("x", &data, &config(16)).unwrap();
        // Cold tier: fetch_cached declines without touching any counter.
        assert!(server.fetch_cached("x", 4).unwrap().is_none());
        let s = server.stats();
        assert_eq!((s.requests, s.cache_hits, s.cache_misses), (0, 0, 0));
        // The blocking path serves (and counts) the miss...
        let (via_fetch, _) = server.fetch("x", 4).unwrap();
        // ...after which fetch_cached serves the warm tier.
        let (t, item) = server.fetch_cached("x", 4).unwrap().unwrap();
        assert!(t.cache_hit);
        assert!(Arc::ptr_eq(&t.tier, &via_fetch.tier));
        assert_eq!(item.max_segments(), 16);
        let s = server.stats();
        assert_eq!((s.requests, s.cache_hits, s.cache_misses), (2, 1, 1));
        assert_eq!(
            s.bytes_served,
            via_fetch.total_bytes() + t.total_bytes(),
            "both paths count served bytes"
        );
        // Error paths count the request exactly once.
        assert!(server.fetch_cached("missing", 4).is_err());
        assert!(matches!(
            server.fetch_cached("x", 0),
            Err(RecoilError::InvalidConfig { .. })
        ));
        assert_eq!(server.stats().requests, 4);
    }

    #[test]
    fn payload_crc_is_memoized_and_matches_streaming() {
        let data = sample(70_000);
        let server = small_server();
        let item = server.publish("x", &data, &config(8)).unwrap();
        // Reference: one streaming pass over every word's LE bytes.
        let mut state = 0xFFFF_FFFFu32;
        for &w in &item.stream.words {
            state = recoil_core::update_crc32(state, &w.to_le_bytes());
        }
        let expect = state ^ 0xFFFF_FFFF;
        assert_eq!(item.payload_crc32(), expect);
        // Memoized: the second call returns the same value.
        assert_eq!(item.payload_crc32(), expect);
    }

    #[test]
    fn transport_counters_and_gauges() {
        let server = small_server();
        server.connection_rejected();
        server.connection_rejected();
        server.connection_evicted();
        server.set_queue_depth(5);
        server.set_open_slots(59);
        let s = server.stats();
        assert_eq!(s.rejected_connections, 2);
        assert_eq!(s.evicted_connections, 1);
        assert_eq!(s.queue_depth, 5);
        assert_eq!(s.open_slots, 59);
        // Gauges move both ways.
        server.set_queue_depth(0);
        assert_eq!(server.stats().queue_depth, 0);
    }

    #[test]
    fn concurrent_publish_and_request_stress() {
        let data = sample(60_000);
        let server = ContentServer::with_config(ServerConfig {
            shards: 8,
            tier_cache_capacity: 4,
            batch_workers: 2,
        });
        for i in 0..3 {
            server
                .publish(&format!("seed{i}"), &data, &config(32))
                .unwrap();
        }
        let ok_count = AtomicU64::new(0);
        let issued = AtomicU64::new(0);
        std::thread::scope(|s| {
            // Publishers: new names (some raced duplicates) mid-traffic.
            for p in 0..2 {
                let server = &server;
                let data = &data;
                s.spawn(move || {
                    for i in 0..3 {
                        // Both publishers try "shared{i}": exactly one wins.
                        let _ = server.publish(&format!("shared{i}"), data, &config(16));
                        server
                            .publish(&format!("pub{p}_{i}"), data, &config(16))
                            .unwrap();
                    }
                });
            }
            // Readers: skewed tier mix across seeded + appearing items.
            for r in 0..4usize {
                let server = &server;
                let ok_count = &ok_count;
                let issued = &issued;
                s.spawn(move || {
                    let tiers = [8u64, 8, 8, 4, 16, 1, 500];
                    for i in 0..120 {
                        let name = match (r + i) % 5 {
                            0 => "seed0".to_string(),
                            1 => "seed1".to_string(),
                            2 => "seed2".to_string(),
                            3 => format!("shared{}", i % 3),
                            _ => format!("pub{}_{}", r % 2, i % 3),
                        };
                        issued.fetch_add(1, Ordering::Relaxed);
                        match server.request(&name, tiers[i % tiers.len()]) {
                            Ok(t) => {
                                assert!(t.metadata().num_segments() <= 32);
                                ok_count.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(RecoilError::NotFound { .. }) => {} // not yet published
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                });
            }
        });
        let s = server.stats();
        let ok = ok_count.load(Ordering::Relaxed);
        assert_eq!(s.requests, issued.load(Ordering::Relaxed));
        assert_eq!(
            s.cache_hits + s.cache_misses,
            ok,
            "every served request is exactly one hit or one miss"
        );
        assert!(s.cache_hits > 0, "skewed mix must produce hits");
        // 3 seeds + 3 shared (single winner each) + 2×3 per-publisher names.
        assert_eq!(s.publishes, 12);
        assert_eq!(server.len(), 12);
    }
}
