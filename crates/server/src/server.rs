//! The encode-once, combine-per-request server.

use recoil_core::{
    combine_splits, encode_with_splits, metadata_to_bytes, RecoilContainer, RecoilMetadata,
};
use recoil_models::{CdfTable, StaticModelProvider};
use recoil_rans::EncodedStream;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One published content item: the Large-variation artifact.
pub struct StoredContent {
    /// The single encoded bitstream (shared by every response).
    pub stream: Arc<EncodedStream>,
    /// Full metadata at maximum supported parallelism.
    pub metadata: RecoilMetadata,
    /// The static model clients decode with (transmitted out of band; its
    /// size is identical across variations so the paper's size tables
    /// exclude it).
    pub model: Arc<StaticModelProvider>,
}

/// What the server puts on the wire for one request.
pub struct Transmission {
    /// Shared bitstream payload bytes.
    pub stream_bytes: u64,
    /// Serialized metadata for the client's capability.
    pub metadata_bytes: Vec<u8>,
    /// Parsed form (for in-process clients).
    pub metadata: RecoilMetadata,
    /// Wall-clock nanoseconds the real-time combine + serialize took.
    pub combine_nanos: u128,
}

impl Transmission {
    /// Total bytes transferred for this response.
    pub fn total_bytes(&self) -> u64 {
        self.stream_bytes + self.metadata_bytes.len() as u64
    }
}

/// In-memory content server with decoder-adaptive responses.
#[derive(Default)]
pub struct ContentServer {
    items: HashMap<String, StoredContent>,
}

impl ContentServer {
    /// Empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `data` once at `max_segments` parallelism and publishes it.
    pub fn publish(
        &mut self,
        name: &str,
        data: &[u8],
        quant_bits: u32,
        ways: u32,
        max_segments: u64,
    ) -> &StoredContent {
        let model = Arc::new(StaticModelProvider::new(CdfTable::of_bytes(data, quant_bits)));
        let RecoilContainer { stream, metadata } =
            encode_with_splits(data, model.as_ref(), ways, max_segments);
        self.items.insert(
            name.to_string(),
            StoredContent { stream: Arc::new(stream), metadata, model },
        );
        &self.items[name]
    }

    /// Published item lookup.
    pub fn get(&self, name: &str) -> Option<&StoredContent> {
        self.items.get(name)
    }

    /// Serves `name` for a client that can decode `parallel_segments`
    /// segments in parallel: combines splits in real time, never touching
    /// the bitstream.
    pub fn request(&self, name: &str, parallel_segments: u64) -> Option<Transmission> {
        let item = self.items.get(name)?;
        let t0 = Instant::now();
        let metadata = combine_splits(&item.metadata, parallel_segments.max(1));
        let metadata_bytes = metadata_to_bytes(&metadata);
        let combine_nanos = t0.elapsed().as_nanos();
        Some(Transmission {
            stream_bytes: item.stream.payload_bytes(),
            metadata_bytes,
            metadata,
            combine_nanos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize) -> Vec<u8> {
        (0..len as u32).map(|i| (i.wrapping_mul(2654435761) >> 23) as u8).collect()
    }

    #[test]
    fn publish_then_request_scales_metadata() {
        let data = sample(400_000);
        let mut server = ContentServer::new();
        server.publish("movie", &data, 11, 32, 128);
        let big = server.request("movie", 128).unwrap();
        let small = server.request("movie", 4).unwrap();
        assert_eq!(big.stream_bytes, small.stream_bytes, "bitstream is shared");
        assert!(big.metadata_bytes.len() > 10 * small.metadata_bytes.len());
        assert_eq!(small.metadata.num_segments(), 4);
    }

    #[test]
    fn request_beyond_capacity_serves_max() {
        let data = sample(100_000);
        let mut server = ContentServer::new();
        server.publish("x", &data, 11, 32, 16);
        let t = server.request("x", 10_000).unwrap();
        assert_eq!(t.metadata.num_segments(), 16);
    }

    #[test]
    fn combine_is_real_time() {
        // §3.3: "this process is very lightweight ... can be done in real
        // time by the content delivery server before data transmission".
        let data = sample(2_000_000);
        let mut server = ContentServer::new();
        server.publish("big", &data, 11, 32, 2176);
        let t = server.request("big", 16).unwrap();
        assert!(
            t.combine_nanos < 50_000_000,
            "combine took {} ns — not real-time",
            t.combine_nanos
        );
    }

    #[test]
    fn unknown_content_is_none() {
        let server = ContentServer::new();
        assert!(server.request("nope", 4).is_none());
    }
}
