//! The encode-once, combine-per-request server.

use recoil_core::codec::{Codec, EncoderConfig};
use recoil_core::{
    combine_splits, metadata_to_bytes, RecoilContainer, RecoilError, RecoilMetadata,
};
use recoil_models::StaticModelProvider;
use recoil_rans::EncodedStream;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One published content item: the Large-variation artifact.
pub struct StoredContent {
    /// The single encoded bitstream (shared by every response).
    pub stream: Arc<EncodedStream>,
    /// Full metadata at maximum supported parallelism.
    pub metadata: RecoilMetadata,
    /// The static model clients decode with (transmitted out of band; its
    /// size is identical across variations so the paper's size tables
    /// exclude it).
    pub model: Arc<StaticModelProvider>,
}

/// What the server puts on the wire for one request.
pub struct Transmission {
    /// Shared bitstream payload bytes.
    pub stream_bytes: u64,
    /// Serialized metadata for the client's capability.
    pub metadata_bytes: Vec<u8>,
    /// Parsed form (for in-process clients).
    pub metadata: RecoilMetadata,
    /// Wall-clock nanoseconds the real-time combine + serialize took.
    pub combine_nanos: u128,
}

impl Transmission {
    /// Total bytes transferred for this response.
    pub fn total_bytes(&self) -> u64 {
        self.stream_bytes + self.metadata_bytes.len() as u64
    }
}

/// In-memory content server with decoder-adaptive responses.
#[derive(Default)]
pub struct ContentServer {
    items: HashMap<String, StoredContent>,
}

impl ContentServer {
    /// Empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `data` once under `config` (lane width, split budget,
    /// quantization) and publishes it as `name`.
    ///
    /// Publishing over an existing name is rejected with
    /// [`RecoilError::AlreadyPublished`] — republishing would silently
    /// invalidate bitstreams clients may still be downloading. Use
    /// [`ContentServer::unpublish`] first to replace content.
    pub fn publish(
        &mut self,
        name: &str,
        data: &[u8],
        config: &EncoderConfig,
    ) -> Result<&StoredContent, RecoilError> {
        let entry = match self.items.entry(name.to_string()) {
            Entry::Occupied(_) => {
                return Err(RecoilError::AlreadyPublished {
                    name: name.to_string(),
                })
            }
            Entry::Vacant(v) => v,
        };
        let codec = Codec::from_config(config.clone())?;
        let encoded = codec.encode(data)?;
        let RecoilContainer { stream, metadata } = encoded.container;
        Ok(entry.insert(StoredContent {
            stream: Arc::new(stream),
            metadata,
            model: Arc::new(encoded.model),
        }))
    }

    /// Removes published content, returning whether it existed.
    pub fn unpublish(&mut self, name: &str) -> bool {
        self.items.remove(name).is_some()
    }

    /// Published item lookup.
    pub fn get(&self, name: &str) -> Option<&StoredContent> {
        self.items.get(name)
    }

    /// Serves `name` for a client that can decode `parallel_segments`
    /// segments in parallel: combines splits in real time, never touching
    /// the bitstream.
    ///
    /// `parallel_segments` is validated at this API boundary: a request for
    /// zero segments is a malformed client header, reported as
    /// [`RecoilError::InvalidConfig`] rather than silently clamped deep in
    /// the combine path.
    pub fn request(&self, name: &str, parallel_segments: u64) -> Result<Transmission, RecoilError> {
        if parallel_segments == 0 {
            return Err(RecoilError::config(
                "parallel_segments",
                "a client must request at least one decode segment",
            ));
        }
        let item = self.items.get(name).ok_or_else(|| RecoilError::NotFound {
            name: name.to_string(),
        })?;
        let t0 = Instant::now();
        let metadata = combine_splits(&item.metadata, parallel_segments);
        let metadata_bytes = metadata_to_bytes(&metadata);
        let combine_nanos = t0.elapsed().as_nanos();
        Ok(Transmission {
            stream_bytes: item.stream.payload_bytes(),
            metadata_bytes,
            metadata,
            combine_nanos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize) -> Vec<u8> {
        (0..len as u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 23) as u8)
            .collect()
    }

    fn config(max_segments: u64) -> EncoderConfig {
        EncoderConfig {
            max_segments,
            ..EncoderConfig::default()
        }
    }

    #[test]
    fn publish_then_request_scales_metadata() {
        let data = sample(400_000);
        let mut server = ContentServer::new();
        server.publish("movie", &data, &config(128)).unwrap();
        let big = server.request("movie", 128).unwrap();
        let small = server.request("movie", 4).unwrap();
        assert_eq!(big.stream_bytes, small.stream_bytes, "bitstream is shared");
        assert!(big.metadata_bytes.len() > 10 * small.metadata_bytes.len());
        assert_eq!(small.metadata.num_segments(), 4);
    }

    #[test]
    fn request_beyond_capacity_serves_max() {
        let data = sample(100_000);
        let mut server = ContentServer::new();
        server.publish("x", &data, &config(16)).unwrap();
        let t = server.request("x", 10_000).unwrap();
        assert_eq!(t.metadata.num_segments(), 16);
    }

    #[test]
    fn duplicate_publish_is_rejected_and_preserves_original() {
        let data = sample(50_000);
        let mut server = ContentServer::new();
        server.publish("x", &data, &config(16)).unwrap();
        let before = server.get("x").unwrap().metadata.num_segments();
        let err = match server.publish("x", &data, &config(4)) {
            Err(e) => e,
            Ok(_) => panic!("duplicate publish must be rejected"),
        };
        assert!(matches!(err, RecoilError::AlreadyPublished { ref name } if name == "x"));
        assert_eq!(server.get("x").unwrap().metadata.num_segments(), before);
        // After unpublishing, the name is free again.
        assert!(server.unpublish("x"));
        server.publish("x", &data, &config(4)).unwrap();
    }

    #[test]
    fn invalid_publish_config_is_rejected() {
        let data = sample(10_000);
        let mut server = ContentServer::new();
        let bad = EncoderConfig {
            ways: 0,
            ..EncoderConfig::default()
        };
        assert!(matches!(
            server.publish("x", &data, &bad),
            Err(RecoilError::InvalidConfig { field: "ways", .. })
        ));
        assert!(server.get("x").is_none());
    }

    #[test]
    fn zero_segment_request_is_invalid() {
        let data = sample(10_000);
        let mut server = ContentServer::new();
        server.publish("x", &data, &config(8)).unwrap();
        assert!(matches!(
            server.request("x", 0),
            Err(RecoilError::InvalidConfig {
                field: "parallel_segments",
                ..
            })
        ));
    }

    #[test]
    fn combine_is_real_time() {
        // §3.3: "this process is very lightweight ... can be done in real
        // time by the content delivery server before data transmission".
        let data = sample(2_000_000);
        let mut server = ContentServer::new();
        server.publish("big", &data, &config(2176)).unwrap();
        let t = server.request("big", 16).unwrap();
        assert!(
            t.combine_nanos < 50_000_000,
            "combine took {} ns — not real-time",
            t.combine_nanos
        );
    }

    #[test]
    fn unknown_content_is_not_found() {
        let server = ContentServer::new();
        assert!(matches!(
            server.request("nope", 4),
            Err(RecoilError::NotFound { ref name }) if name == "nope"
        ));
    }
}
