//! # Recoil: Parallel rANS Decoding with Decoder-Adaptive Scalability
//!
//! A from-scratch Rust implementation of *Recoil* (Lin, Arunruangsirilert,
//! Sun, Katto — ICPP 2023) and everything it is evaluated against: the
//! interleaved rANS substrate, the conventional "partitioning symbols"
//! baseline, a multians-style tANS baseline, AVX2/AVX-512 decode kernels,
//! and a content-delivery server that scales parallelism metadata to each
//! client in real time.
//!
//! ## The idea in one paragraph
//!
//! Classic parallel rANS cuts the *symbols* into chunks before encoding, so
//! the parallelism level is burned into the file: a phone that can decode
//! 4 chunks still downloads the overhead of 2176. Recoil instead encodes
//! **one** interleaved rANS bitstream and records, at chosen
//! renormalization points, tiny per-lane resume states (16 bits each,
//! because a freshly renormalized state is provably below `2^16`) plus
//! their symbol indices. Decoders can start mid-stream from this metadata
//! via a three-phase synchronization procedure — and the server can drop
//! metadata entries per client, shrinking the transfer without touching
//! the bitstream.
//!
//! ## Quickstart
//!
//! The primary API is the [`core::codec::Codec`] facade: configure the
//! encode side once with the builder, and plug in a [`DecodeBackend`] for
//! the decode side.
//!
//! ```
//! use recoil::prelude::*;
//!
//! // Some data to compress.
//! let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
//!
//! // A reusable codec: 32 interleaved lanes, split metadata for up to 64
//! // parallel decoders, an order-0 model quantized to 2^11, and a decode
//! // backend that auto-selects AVX-512 → AVX2 → scalar at runtime.
//! let codec = Codec::builder()
//!     .ways(32)
//!     .max_segments(64)
//!     .quant_bits(11)
//!     .backend(AutoBackend::with_threads(4))
//!     .build()?;
//!
//! // Encode once. The planner is best-effort: up to 64 segments.
//! let encoded = codec.encode(&data)?;
//! assert!(encoded.container.metadata.num_segments() > 56);
//!
//! // A 4-thread client needs only 4 segments: combine in real time — the
//! // bitstream bytes are untouched, only metadata entries are dropped.
//! let small = combine_splits(&encoded.container.metadata, 4);
//! assert_eq!(small.num_segments(), 4);
//!
//! // Decode through the configured backend…
//! let decoded: Vec<u8> = codec.decode(&encoded)?;
//! assert_eq!(decoded, data);
//!
//! // …or through any other backend, per call.
//! let scalar: Vec<u8> = codec.decode_with(&ScalarBackend, &encoded)?;
//! assert_eq!(scalar, data);
//! # Ok::<(), RecoilError>(())
//! ```
//!
//! ## Backend selection semantics
//!
//! | Backend | Behaviour |
//! |---|---|
//! | [`ScalarBackend`] | portable serial reference; always available |
//! | [`PooledBackend`] | one task per metadata segment on a persistent thread pool |
//! | [`Avx2Backend`] / [`Avx512Backend`] | explicit vector kernels; decoding errors with [`RecoilError::BackendUnavailable`] on hosts without the CPU feature |
//! | [`AutoBackend`] | runtime dispatch **AVX-512 → AVX2 → scalar**; never unavailable, falls back to scalar for non-32-way streams |
//!
//! Invalid configurations (`ways = 0`, `quant_bits > 16`,
//! `max_segments = 0`) are rejected at [`Codec::builder`]'s `build()` with
//! typed [`RecoilError`] variants — the public API surface does not panic.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`rans`] | single & W-way interleaved rANS codec (Table 3 parameters) |
//! | [`core`] | `Codec` facade, split planner, metadata wire format, combining, 3-phase decoder |
//! | [`models`] | histograms, quantization, decode LUTs, hyperprior models |
//! | [`simd`] | AVX2 / AVX-512 kernels + drivers, SIMD decode backends |
//! | [`conventional`] | baseline (B): partitioning-symbols codec |
//! | [`tans`] | baseline (C): tANS + multians self-sync parallel decoder |
//! | [`parallel`] | persistent thread pool (also the "GPU-sim" substrate) |
//! | [`data`] | Table 4 dataset generators |
//! | [`server`] | encode-once / combine-per-request content delivery |
//! | [`net`] | framed TCP transport: `NetServer` / pooling `NetClient` |
//! | [`fabric`] | multi-node routing, replication, failover, chaos proxy |

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

pub use recoil_bitio as bitio;
pub use recoil_conventional as conventional;
pub use recoil_core as core;
pub use recoil_data as data;
pub use recoil_fabric as fabric;
pub use recoil_models as models;
pub use recoil_net as net;
pub use recoil_parallel as parallel;
pub use recoil_rans as rans;
pub use recoil_server as server;
pub use recoil_simd as simd;
pub use recoil_tans as tans;
pub use recoil_telemetry as telemetry;

#[doc(no_inline)]
pub use recoil_core::codec::{Codec, DecodeBackend, Encoded, EncoderConfig};
#[doc(no_inline)]
pub use recoil_core::RecoilError;

/// The commonly used names in one import.
pub mod prelude {
    pub use recoil_conventional::{decode_conventional, encode_conventional};
    pub use recoil_core::codec::{
        Codec, CodecBuilder, CodecSymbol, DecodeBackend, DecodeRequest, Encoded, EncoderConfig,
        PooledBackend, ScalarBackend,
    };
    pub use recoil_core::{
        combine_splits, metadata_from_bytes, metadata_to_bytes, plan_chunks, try_combine_splits,
        ChunkPlan, Heuristic, IncrementalDecoder, PlannedChunk, PlannerConfig, RecoilContainer,
        RecoilError, RecoilMetadata, SplitPlanner,
    };
    pub use recoil_models::{
        CdfTable, GaussianScaleBank, Histogram, LatentModelProvider, LatentSpec, ModelProvider,
        StaticModelProvider, Symbol,
    };
    pub use recoil_net::{
        NetClient, NetClientConfig, NetConfig, NetServer, NetServerHandle, StreamedFetch,
    };
    pub use recoil_parallel::ThreadPool;
    pub use recoil_rans::{
        decode_interleaved, EncodedStream, InterleavedEncoder, NullSink, RansError, VecSink,
    };
    pub use recoil_simd::{
        decode_conventional_simd, decode_interleaved_simd, AutoBackend, Avx2Backend, Avx512Backend,
        Kernel, SimdModel,
    };
    pub use recoil_tans::{decode_multians, decode_tans_serial, encode_tans, TansTable};

    // Deprecated shims, still exported so existing call sites keep
    // compiling (each use warns and points at the `Codec` replacement).
    #[allow(deprecated)]
    pub use recoil_core::{decode_recoil, decode_recoil_into, encode_with_splits};
    #[allow(deprecated)]
    pub use recoil_simd::decode_recoil_simd;
}
