//! # Recoil: Parallel rANS Decoding with Decoder-Adaptive Scalability
//!
//! A from-scratch Rust implementation of *Recoil* (Lin, Arunruangsirilert,
//! Sun, Katto — ICPP 2023) and everything it is evaluated against: the
//! interleaved rANS substrate, the conventional "partitioning symbols"
//! baseline, a multians-style tANS baseline, AVX2/AVX-512 decode kernels,
//! and a content-delivery server that scales parallelism metadata to each
//! client in real time.
//!
//! ## The idea in one paragraph
//!
//! Classic parallel rANS cuts the *symbols* into chunks before encoding, so
//! the parallelism level is burned into the file: a phone that can decode
//! 4 chunks still downloads the overhead of 2176. Recoil instead encodes
//! **one** interleaved rANS bitstream and records, at chosen
//! renormalization points, tiny per-lane resume states (16 bits each,
//! because a freshly renormalized state is provably below `2^16`) plus
//! their symbol indices. Decoders can start mid-stream from this metadata
//! via a three-phase synchronization procedure — and the server can drop
//! metadata entries per client, shrinking the transfer without touching
//! the bitstream.
//!
//! ## Quickstart
//!
//! ```
//! use recoil::prelude::*;
//!
//! // Some data and a static order-0 model quantized to 2^11.
//! let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
//! let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
//!
//! // Encode once with split metadata for up to 64 parallel decoders.
//! let container = encode_with_splits(&data, &model, 32, 64);
//! // The planner is best-effort: up to 64 segments, usually all of them.
//! assert!(container.metadata.num_segments() > 56);
//!
//! // A 4-thread client needs only 4 segments: combine in real time.
//! let small = combine_splits(&container.metadata, 4);
//!
//! // Decode in parallel (pool optional; SIMD drivers also available).
//! let pool = ThreadPool::new(3);
//! let decoded: Vec<u8> =
//!     decode_recoil(&container.stream, &small, &model, Some(&pool)).unwrap();
//! assert_eq!(decoded, data);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`rans`] | single & W-way interleaved rANS codec (Table 3 parameters) |
//! | [`core`] | split planner, metadata wire format, combining, 3-phase decoder |
//! | [`models`] | histograms, quantization, decode LUTs, hyperprior models |
//! | [`simd`] | AVX2 / AVX-512 kernels + drivers, runtime dispatch |
//! | [`conventional`] | baseline (B): partitioning-symbols codec |
//! | [`tans`] | baseline (C): tANS + multians self-sync parallel decoder |
//! | [`parallel`] | persistent thread pool (also the "GPU-sim" substrate) |
//! | [`data`] | Table 4 dataset generators |
//! | [`server`] | encode-once / combine-per-request content delivery |

pub use recoil_bitio as bitio;
pub use recoil_conventional as conventional;
pub use recoil_core as core;
pub use recoil_data as data;
pub use recoil_models as models;
pub use recoil_parallel as parallel;
pub use recoil_rans as rans;
pub use recoil_server as server;
pub use recoil_simd as simd;
pub use recoil_tans as tans;

/// The commonly used names in one import.
pub mod prelude {
    pub use recoil_conventional::{decode_conventional, encode_conventional};
    pub use recoil_core::{
        combine_splits, decode_recoil, decode_recoil_into, encode_with_splits,
        metadata_from_bytes, metadata_to_bytes, PlannerConfig, RecoilContainer, RecoilMetadata,
        SplitPlanner,
    };
    pub use recoil_models::{
        CdfTable, GaussianScaleBank, Histogram, LatentModelProvider, LatentSpec, ModelProvider,
        StaticModelProvider, Symbol,
    };
    pub use recoil_parallel::ThreadPool;
    pub use recoil_rans::{
        decode_interleaved, EncodedStream, InterleavedEncoder, NullSink, RansError, VecSink,
    };
    pub use recoil_simd::{
        decode_conventional_simd, decode_interleaved_simd, decode_recoil_simd, Kernel, SimdModel,
    };
    pub use recoil_tans::{decode_multians, decode_tans_serial, encode_tans, TansTable};
}
