//! The rANS substrate: single-state and W-way interleaved codecs.
//!
//! Implements the Range variant of Asymmetric Numeral Systems exactly as in
//! the paper's preliminaries (Definitions 2.1 and 2.2) with the recommended
//! parameters of Table 3: 32-bit states, `b = 16`-bit renormalization words,
//! lower bound `L = 2^16`, quantization level `n <= 16`, and (by default)
//! 32 interleaved lanes in the style of Giesen's interleaved entropy coders
//! (paper §2.2).
//!
//! Streams are encoded forward (`s_1 .. s_N`) and decoded backward
//! (`s_N .. s_1`); the decoder writes each symbol to its known position, so
//! round-trips are identity. Because `b >= n`, **every renormalization moves
//! exactly one u16 word** — Lemma 3.1's precondition — and every renorm
//! event leaves the encoder state below `L`, representable in 16 bits.
//! Encoders report these events through [`RenormSink`]; Recoil's split
//! planner listens to them to place split points.
//!
//! Decode discipline (load-bearing for Recoil): per symbol slot, descending
//! position, the owning lane *renormalizes first (if its state is below `L`)
//! and then applies the decode transform*. Reads are therefore issued lazily,
//! immediately before the owning lane's next transform, which keeps the
//! global read order the exact reverse of the encoder's write order — and is
//! what lets Recoil initialize a lane "immediately before the first time
//! it reads the bitstream" (paper §4.1.1).
//!
//! Both directions have a branchless fast-loop engine over whole 32-symbol
//! groups with a retained careful reference: [`fast`] for decode (fast loop
//! while both the symbol and word budgets allow it), [`fast_encode`] for
//! encode (no underflow hazard, so the fast loop covers every whole group,
//! with zero-frequency symbols detected branchlessly and reported as
//! [`RansError::ZeroFrequency`] at the first offending position).

// Audited unsafe crate: every unsafe operation sits in an explicit block.
#![deny(unsafe_op_in_unsafe_fn)]

mod error;
pub mod fast;
pub mod fast_encode;
mod interleaved;
pub mod params;
mod single;
mod sink;
mod step;
mod stream;

pub use error::RansError;
pub use fast::{
    decode_span, decode_span_careful, decode_span_with_stats, SpanStats, GROUP as FAST_GROUP,
};
pub use fast_encode::{encode_span, encode_span_careful, scan_span};
pub use interleaved::{decode_interleaved, decode_interleaved_into, InterleavedEncoder};
pub use single::{decode_single, SingleEncoder};
pub use sink::{NullSink, RenormEvent, RenormSink, VecSink, NO_SYMBOL};
pub use step::{decode_transform, renorm_read, LaneDecoder};
pub use stream::EncodedStream;
