//! The primitive decode steps, shared verbatim by the serial decoder,
//! Recoil's three-phase decoder, and the conventional baseline — one source
//! of truth for the Eq. 2 / Eq. 4 arithmetic.

use crate::params::{LOWER_BOUND, RENORM_BITS};
use crate::RansError;
use recoil_bitio::BackwardWordReader;
use recoil_models::ModelProvider;

/// Eq. 4 (one step, because `b >= n`): if `x` underflowed `L`, pull one u16
/// word from the stream; otherwise leave it unchanged.
#[inline(always)]
pub fn renorm_read(
    x: u32,
    reader: &mut BackwardWordReader<'_>,
    pos: u64,
) -> Result<u32, RansError> {
    if x < LOWER_BOUND {
        let w = reader.next().ok_or(RansError::BitstreamUnderflow { pos })? as u32;
        let x = (x << RENORM_BITS) | w;
        debug_assert!(x >= LOWER_BOUND, "state must recover in one step (b >= n)");
        Ok(x)
    } else {
        Ok(x)
    }
}

/// Eq. 2: decodes one symbol from state `x` at position `pos`, returning the
/// successor state and the symbol. `x` must be renormalized (`>= L`).
#[inline(always)]
pub fn decode_transform<P: ModelProvider + ?Sized>(
    x: u32,
    pos: u64,
    provider: &P,
    n: u32,
    mask: u32,
) -> (u32, u16) {
    debug_assert!(x >= LOWER_BOUND);
    let slot = x & mask;
    let (sym, f, c) = provider.lookup(pos, slot);
    debug_assert!(f > 0, "decoded a zero-frequency slot");
    let x = f * (x >> n) + slot - c;
    (x, sym)
}

/// One decoding lane: its state plus the renorm-then-transform step.
///
/// Recoil's Sync Phase constructs these from 16-bit metadata states (which
/// are below `L`, so the first step reads exactly one word — the lane is
/// "initialized immediately before the first time it reads the bitstream").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneDecoder {
    /// Current state; below `L` exactly when a renorm word is pending.
    pub x: u32,
}

impl LaneDecoder {
    /// Lane starting from a full (>= L) final state.
    #[inline]
    pub fn from_final_state(x: u32) -> Self {
        debug_assert!(x >= LOWER_BOUND);
        Self { x }
    }

    /// Lane starting from a 16-bit intermediate metadata state (< L).
    #[inline]
    pub fn from_metadata_state(state: u16) -> Self {
        Self { x: state as u32 }
    }

    /// Renormalizes (reading if needed) then decodes the symbol at `pos`.
    #[inline(always)]
    pub fn step<P: ModelProvider + ?Sized>(
        &mut self,
        pos: u64,
        provider: &P,
        n: u32,
        mask: u32,
        reader: &mut BackwardWordReader<'_>,
    ) -> Result<u16, RansError> {
        let x = renorm_read(self.x, reader, pos)?;
        let (x, sym) = decode_transform(x, pos, provider, n, mask);
        self.x = x;
        Ok(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_models::{CdfTable, StaticModelProvider};

    #[test]
    fn renorm_reads_only_below_bound() {
        let words = [0xBEEFu16];
        let mut r = BackwardWordReader::from_end(&words);
        let x = renorm_read(LOWER_BOUND, &mut r, 0).unwrap();
        assert_eq!(x, LOWER_BOUND); // no read
        assert_eq!(r.remaining(), 1);
        let x = renorm_read(0x1234, &mut r, 0).unwrap();
        assert_eq!(x, 0x1234_BEEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn renorm_underflow_is_reported() {
        let words: [u16; 0] = [];
        let mut r = BackwardWordReader::from_end(&words);
        let err = renorm_read(5, &mut r, 42).unwrap_err();
        assert_eq!(err, RansError::BitstreamUnderflow { pos: 42 });
    }

    #[test]
    fn transform_inverts_encode_formula() {
        // Encode x' = (x/f) << n + F + x%f by hand, then invert via
        // decode_transform.
        let provider = StaticModelProvider::new(CdfTable::from_freqs(vec![4, 8, 4], 4));
        let (n, mask) = (4u32, 15u32);
        for sym in 0u16..3 {
            let (f, c) = (
                provider.table().freq(sym as usize),
                provider.table().cdf(sym as usize),
            );
            for x0 in [LOWER_BOUND, 123_456, 0xFFFF_FF00u32 >> 4] {
                let enc = ((x0 / f) << n) + c + (x0 % f);
                let (back, s) = decode_transform(enc, 0, &provider, n, mask);
                assert_eq!(s, sym);
                assert_eq!(back, x0);
            }
        }
    }
}
