//! Reference non-interleaved rANS codec — a direct transcription of
//! Equations 1–4, used by the paper's §3 proof-of-concept (Figure 4) and by
//! our tests as an independent cross-check of the interleaved codec
//! (`W = 1` interleaved must match it word-for-word).

use crate::params::{self, INITIAL_STATE};
use crate::sink::{RenormEvent, RenormSink, NO_SYMBOL};
use crate::step::{decode_transform, renorm_read};
use crate::{EncodedStream, RansError};
use recoil_bitio::{BackwardWordReader, WordStream};
use recoil_models::{ModelProvider, Symbol};

/// Single-state rANS encoder.
pub struct SingleEncoder<'p, P: ModelProvider> {
    provider: &'p P,
    n: u32,
    state: u32,
    stream: WordStream,
    next_pos: u64,
}

impl<'p, P: ModelProvider> SingleEncoder<'p, P> {
    /// New encoder starting at the canonical initial state.
    pub fn new(provider: &'p P) -> Self {
        let n = provider.quant_bits();
        assert!(n <= params::MAX_QUANT_BITS);
        Self {
            provider,
            n,
            state: INITIAL_STATE,
            stream: WordStream::new(),
            next_pos: 0,
        }
    }

    /// Encodes one symbol (Eq. 3 renormalization, then Eq. 1 transform).
    #[inline]
    pub fn encode<S: Symbol>(&mut self, sym: S, sink: &mut impl RenormSink) {
        let pos = self.next_pos;
        let (f, c) = self.provider.stats(pos, sym.to_u16());
        debug_assert!(f > 0, "encoding a zero-frequency symbol at position {pos}");
        let mut x = self.state;
        if (x as u64) >= params::renorm_threshold(f, self.n) {
            let offset = self.stream.push((x & 0xFFFF) as u16);
            x >>= params::RENORM_BITS;
            debug_assert!(x < params::LOWER_BOUND, "one-step renorm violated");
            let last = pos.checked_sub(1).unwrap_or(NO_SYMBOL);
            sink.on_renorm(RenormEvent {
                lane: 0,
                pos: last,
                state: x as u16,
                offset,
            });
        }
        self.state = ((x / f) << self.n) + c + (x % f);
        self.next_pos = pos + 1;
    }

    /// Encodes a whole slice.
    pub fn encode_all<S: Symbol>(&mut self, data: &[S], sink: &mut impl RenormSink) {
        for &s in data {
            self.encode(s, sink);
        }
    }

    /// Finishes, returning the stream container (a `ways = 1` stream).
    pub fn finish(self) -> EncodedStream {
        EncodedStream {
            words: self.stream.into_words(),
            final_states: vec![self.state],
            num_symbols: self.next_pos,
            ways: 1,
        }
    }
}

/// Decodes a single-state stream produced by [`SingleEncoder`].
pub fn decode_single<S: Symbol, P: ModelProvider>(
    stream: &EncodedStream,
    provider: &P,
) -> Result<Vec<S>, RansError> {
    stream.validate()?;
    if stream.ways != 1 {
        return Err(RansError::MalformedStream(format!(
            "decode_single on a {}-way stream",
            stream.ways
        )));
    }
    let n = provider.quant_bits();
    let mask = (1u32 << n) - 1;
    let mut x = stream.final_states[0];
    let mut reader = BackwardWordReader::from_end(&stream.words);
    let count = stream.num_symbols as usize;
    let mut out = vec![S::from_u16(0); count];
    for pos in (0..count as u64).rev() {
        x = renorm_read(x, &mut reader, pos)?;
        let (nx, sym) = decode_transform(x, pos, provider, n, mask);
        x = nx;
        out[pos as usize] = S::from_u16(sym);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{NullSink, VecSink};
    use recoil_models::{CdfTable, StaticModelProvider};

    fn provider(data: &[u8], n: u32) -> StaticModelProvider {
        StaticModelProvider::new(CdfTable::of_bytes(data, n))
    }

    #[test]
    fn round_trip_small() {
        let data = b"hello rans world, hello again".to_vec();
        let p = provider(&data, 8);
        let mut enc = SingleEncoder::new(&p);
        enc.encode_all(&data, &mut NullSink);
        let stream = enc.finish();
        let back: Vec<u8> = decode_single(&stream, &p).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn round_trip_various_n() {
        let data: Vec<u8> = (0..20_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        for n in [8u32, 10, 11, 12, 14, 16] {
            let p = provider(&data, n);
            let mut enc = SingleEncoder::new(&p);
            enc.encode_all(&data, &mut NullSink);
            let stream = enc.finish();
            let back: Vec<u8> = decode_single(&stream, &p).unwrap();
            assert_eq!(back, data, "n={n}");
        }
    }

    #[test]
    fn compressed_size_tracks_entropy() {
        // Skewed distribution: size must be well under 1 byte/symbol and
        // within a few percent of the quantized cross-entropy.
        let mut data = vec![0u8; 100_000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = if i % 10 == 0 { (i % 7) as u8 + 1 } else { 0 };
        }
        let p = provider(&data, 12);
        let mut enc = SingleEncoder::new(&p);
        enc.encode_all(&data, &mut NullSink);
        let stream = enc.finish();
        let h = recoil_models::Histogram::of_bytes(&data);
        let ideal_bits = p.table().cross_entropy_bits(&h);
        let actual_bits = stream.words.len() as f64 * 16.0;
        assert!(
            actual_bits < ideal_bits * 1.02 + 64.0,
            "{actual_bits} vs ideal {ideal_bits}"
        );
        assert!(actual_bits > ideal_bits * 0.98 - 64.0);
    }

    #[test]
    fn renorm_events_have_bounded_states_and_ordered_offsets() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 256) as u8).collect();
        let p = provider(&data, 11);
        let mut enc = SingleEncoder::new(&p);
        let mut sink = VecSink::new();
        enc.encode_all(&data, &mut sink);
        let stream = enc.finish();
        assert_eq!(sink.events.len(), stream.words.len(), "one event per word");
        for (k, e) in sink.events.iter().enumerate() {
            assert_eq!(e.offset, k as u64);
            assert_eq!(e.lane, 0);
            // state is u16 by construction; also check against Lemma 3.1.
            assert!((e.state as u32) < params::LOWER_BOUND);
        }
        // Event positions are non-decreasing.
        for w in sink.events.windows(2) {
            assert!(w[0].pos <= w[1].pos || w[0].pos == NO_SYMBOL);
        }
    }

    #[test]
    fn figure4_style_intermediate_decode() {
        // The §3 proof of concept: restart decoding from a recorded renorm
        // event and recover the suffix that event covers.
        let data: Vec<u8> = (0..10_000u32).map(|i| ((i * 31) % 200) as u8).collect();
        let p = provider(&data, 11);
        let mut enc = SingleEncoder::new(&p);
        let mut sink = VecSink::new();
        enc.encode_all(&data, &mut sink);
        let stream = enc.finish();

        // Pick an event near the middle with a concrete position.
        let e = sink
            .events
            .iter()
            .find(|e| e.pos != NO_SYMBOL && e.pos >= 5_000)
            .copied()
            .expect("mid-stream renorm event");

        // Thread-1 style decode: start from the recorded state, renormalize
        // with the word at the recorded offset, then decode s_pos .. s_0.
        let n = p.quant_bits();
        let mask = (1u32 << n) - 1;
        let mut x = e.state as u32;
        let mut reader = BackwardWordReader::new(&stream.words, e.offset);
        let mut got = vec![0u8; (e.pos + 1) as usize];
        for pos in (0..=e.pos).rev() {
            x = renorm_read(x, &mut reader, pos).unwrap();
            let (nx, sym) = decode_transform(x, pos, &p, n, mask);
            x = nx;
            got[pos as usize] = sym as u8;
        }
        assert_eq!(&got[..], &data[..=e.pos as usize]);
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let data = vec![7u8; 1000];
        let p = provider(b"mixed content 777", 8);
        // Build a stream then truncate its words.
        let data2: Vec<u8> = data.iter().map(|_| b'7').collect();
        let mut enc = SingleEncoder::new(&p);
        enc.encode_all(&data2, &mut NullSink);
        let mut stream = enc.finish();
        if !stream.words.is_empty() {
            stream.words.truncate(stream.words.len() / 2);
        }
        let r: Result<Vec<u8>, _> = decode_single(&stream, &p);
        // Either decodes garbage of right length (if no underflow was hit)
        // or reports underflow; it must never panic. Underflow expected for
        // this input.
        if let Err(e) = r {
            assert!(matches!(e, RansError::BitstreamUnderflow { .. }));
        }
    }
}
