//! Recommended rANS parameters (paper Table 3).
//!
//! | Symbol          | Description                     | Value          |
//! |-----------------|---------------------------------|----------------|
//! | `sizeof(x_i)`   | size of rANS states             | 32 bits        |
//! | `sizeof(s_i)`   | size of symbols                 | 8 or 16 bits   |
//! | `L`             | renormalization lower bound     | `2^16`         |
//! | `b`             | renormalization output size     | 16 bits        |
//! | `n`             | PDF/CDF quantization level      | varying, <= 16 |
//! | `|E| = |D|`     | number of interleaved codecs    | 32             |
//!
//! `b >= n` guarantees renormalization completes in one step (§4.4), and
//! `L = 2^16` makes every post-renorm state fit a u16 (Lemma 3.1).

/// Renormalization output size `b` in bits: one u16 word per renorm event.
pub const RENORM_BITS: u32 = 16;

/// Renormalization lower bound `L = 2^16`.
pub const LOWER_BOUND: u32 = 1 << RENORM_BITS;

/// State every encoder lane starts from (and every clean decode ends at).
pub const INITIAL_STATE: u32 = LOWER_BOUND;

/// Default number of interleaved lanes `|E| = |D|`: best for AVX2/AVX-512
/// and "naturally fits into a GPU warp" (§4.4).
pub const DEFAULT_WAYS: u32 = 32;

/// Highest supported quantization level (`n <= b`).
pub const MAX_QUANT_BITS: u32 = RENORM_BITS;

/// Encode-side renormalization threshold for frequency `f` at level `n`:
/// `(2^b / 2^n) * L * f = f * 2^(32 - n)` (Def. 2.2). Computed in u64
/// because `f = 2^n - 1` pushes it just below `2^32`.
#[inline(always)]
pub const fn renorm_threshold(freq: u32, n: u32) -> u64 {
    (freq as u64) << (32 - n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_matches_definition() {
        // f * (2^b / 2^n) * L with b = 16, L = 2^16.
        for n in [8u32, 11, 12, 16] {
            for f in [1u32, 5, (1 << n) - 1] {
                let expect = f as u64 * (1u64 << (16 - n + 16));
                assert_eq!(renorm_threshold(f, n), expect);
            }
        }
    }

    #[test]
    fn threshold_never_overflows_u32_range_meaningfully() {
        // Max f at max n stays below 2^32, so a u32 state can always be
        // renormalized below the threshold in one step.
        assert!(renorm_threshold((1 << 16) - 1, 16) < 1 << 32);
    }

    #[test]
    fn one_step_renorm_bound() {
        // After emitting 16 bits, any u32 state lands under L (Lemma 3.1).
        const { assert!(u32::MAX >> RENORM_BITS < LOWER_BOUND) }
    }
}
