//! The encoded-stream container shared by all decoders.

use crate::params;

/// Output of an interleaved rANS encode: the forward-written u16 word
/// stream, the final lane states, and the symbol count.
///
/// This corresponds to the paper's variation (a) payload: "standard rANS
/// bitstream". Recoil's split metadata is carried *separately* (§4: "Recoil
/// does not actually modify the rANS bitstream, but instead works on
/// independent metadata").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedStream {
    /// Renormalization words in write order; decoded back-to-front.
    pub words: Vec<u16>,
    /// State of each lane after its last symbol (read first when decoding).
    pub final_states: Vec<u32>,
    /// Number of symbols `N` encoded in the stream.
    pub num_symbols: u64,
    /// Interleave width `W` the stream was produced with.
    pub ways: u32,
}

impl EncodedStream {
    /// Lane (0-based) that owns the symbol at 0-based position `pos`.
    #[inline(always)]
    pub fn lane_of(&self, pos: u64) -> u32 {
        (pos % self.ways as u64) as u32
    }

    /// Backward read cursor positioned at the end of the word stream —
    /// the `next_read` a whole-stream [`crate::decode_span`] starts from
    /// (`None` when the stream carries no words).
    #[inline]
    pub fn end_cursor(&self) -> Option<u64> {
        (!self.words.is_empty()).then(|| self.words.len() as u64 - 1)
    }

    /// Payload bytes as counted in the paper's size tables: words plus the
    /// explicitly transmitted final states plus the fixed header
    /// (symbol count + lane count + quantization byte).
    pub fn payload_bytes(&self) -> u64 {
        self.words.len() as u64 * 2 + self.final_states.len() as u64 * 4 + Self::HEADER_BYTES
    }

    /// Fixed header cost: u64 symbol count, u32 word count, u8 ways, u8 n,
    /// u16 reserved.
    pub const HEADER_BYTES: u64 = 8 + 4 + 1 + 1 + 2;

    /// Validates the basic invariants shared by every decoder.
    pub fn validate(&self) -> Result<(), crate::RansError> {
        if self.ways == 0 {
            return Err(crate::RansError::MalformedStream(
                "ways must be >= 1".into(),
            ));
        }
        if self.final_states.len() != self.ways as usize {
            return Err(crate::RansError::MalformedStream(format!(
                "{} final states for {} lanes",
                self.final_states.len(),
                self.ways
            )));
        }
        if self.final_states.iter().any(|&s| s < params::LOWER_BOUND) {
            return Err(crate::RansError::MalformedStream(
                "final state below lower bound".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(ways: u32, states: usize) -> EncodedStream {
        EncodedStream {
            words: vec![0; 4],
            final_states: vec![params::INITIAL_STATE; states],
            num_symbols: 10,
            ways,
        }
    }

    #[test]
    fn lane_mapping_is_round_robin() {
        let s = stream(4, 4);
        assert_eq!(s.lane_of(0), 0);
        assert_eq!(s.lane_of(3), 3);
        assert_eq!(s.lane_of(4), 0);
        assert_eq!(s.lane_of(9), 1);
    }

    #[test]
    fn payload_accounts_words_states_header() {
        let s = stream(2, 2);
        assert_eq!(
            s.payload_bytes(),
            4 * 2 + 2 * 4 + EncodedStream::HEADER_BYTES
        );
    }

    #[test]
    fn validation_rejects_bad_streams() {
        assert!(stream(0, 0).validate().is_err());
        assert!(stream(4, 3).validate().is_err());
        let mut s = stream(2, 2);
        s.final_states[1] = 5; // below L
        assert!(s.validate().is_err());
        assert!(stream(2, 2).validate().is_ok());
    }
}
