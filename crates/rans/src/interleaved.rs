//! W-way interleaved rANS (paper §2.2, Figure 1).
//!
//! Lane `j` owns symbol positions `j, j+W, j+2W, ...` (round-robin). During
//! encoding each lane renormalizes — writing at most one u16 word — right
//! before its own encode transform, so the global word order is "increasing
//! lane ID within a symbol group", exactly as Figure 1 shows. Decoding
//! mirrors this lazily: a lane reads its pending renorm word immediately
//! before its next decode transform, which reproduces the reverse global
//! write order word-for-word (see the crate docs for why this discipline is
//! what Recoil's Sync Phase relies on).

use crate::params::{self, INITIAL_STATE};
use crate::sink::{RenormEvent, RenormSink, NO_SYMBOL};
use crate::{EncodedStream, RansError};
use recoil_bitio::WordStream;
use recoil_models::{ModelProvider, Symbol};

/// Group-of-interleaved-lanes rANS encoder.
pub struct InterleavedEncoder<'p, P: ModelProvider> {
    provider: &'p P,
    n: u32,
    ways: u64,
    states: Vec<u32>,
    stream: WordStream,
    next_pos: u64,
}

impl<'p, P: ModelProvider> InterleavedEncoder<'p, P> {
    /// New encoder with `ways` lanes (Table 3 recommends 32).
    pub fn new(provider: &'p P, ways: u32) -> Self {
        assert!(ways >= 1, "need at least one lane");
        let n = provider.quant_bits();
        assert!(n <= params::MAX_QUANT_BITS);
        Self {
            provider,
            n,
            ways: ways as u64,
            states: vec![INITIAL_STATE; ways as usize],
            stream: WordStream::new(),
            next_pos: 0,
        }
    }

    /// Encoder with the recommended 32 lanes.
    pub fn new_default(provider: &'p P) -> Self {
        Self::new(provider, params::DEFAULT_WAYS)
    }

    /// Number of symbols encoded so far.
    pub fn position(&self) -> u64 {
        self.next_pos
    }

    /// Encodes one symbol on its round-robin lane.
    #[inline]
    pub fn encode<S: Symbol>(&mut self, sym: S, sink: &mut impl RenormSink) {
        let pos = self.next_pos;
        let lane = (pos % self.ways) as usize;
        let (f, c) = self.provider.stats(pos, sym.to_u16());
        debug_assert!(f > 0, "encoding a zero-frequency symbol at position {pos}");
        let mut x = self.states[lane];
        if (x as u64) >= params::renorm_threshold(f, self.n) {
            let offset = self.stream.push((x & 0xFFFF) as u16);
            x >>= params::RENORM_BITS;
            debug_assert!(x < params::LOWER_BOUND, "one-step renorm violated");
            let last = pos.checked_sub(self.ways).unwrap_or(NO_SYMBOL);
            sink.on_renorm(RenormEvent {
                lane: lane as u32,
                pos: last,
                state: x as u16,
                offset,
            });
        }
        self.states[lane] = ((x / f) << self.n) + c + (x % f);
        self.next_pos = pos + 1;
    }

    /// Encodes a whole slice.
    pub fn encode_all<S: Symbol>(&mut self, data: &[S], sink: &mut impl RenormSink) {
        for &s in data {
            self.encode(s, sink);
        }
    }

    /// Encodes a whole slice through the branchless fast engine
    /// ([`crate::fast_encode::encode_span`]) — bit-identical words, states,
    /// and events to [`InterleavedEncoder::encode_all`], substantially
    /// faster on bulk input.
    ///
    /// # Errors
    ///
    /// [`RansError::ZeroFrequency`] at the first symbol the model gives no
    /// probability mass (where [`InterleavedEncoder::encode`] would hit a
    /// divide-by-zero). On error the encoder is left mid-span and must be
    /// discarded.
    pub fn encode_all_fast<S: Symbol>(
        &mut self,
        data: &[S],
        sink: &mut impl RenormSink,
    ) -> Result<(), RansError> {
        let lo = self.next_pos;
        let word_base = self.stream.len();
        crate::fast_encode::encode_span(
            self.provider,
            data,
            lo,
            &mut self.states,
            self.stream.vec_mut(),
            word_base,
            sink,
        )?;
        self.next_pos = lo + data.len() as u64;
        Ok(())
    }

    /// Finishes, returning the stream container.
    pub fn finish(self) -> EncodedStream {
        EncodedStream {
            words: self.stream.into_words(),
            final_states: self.states,
            num_symbols: self.next_pos,
            ways: self.ways as u32,
        }
    }
}

/// Serial decode of a whole interleaved stream (baseline (A),
/// "Single-Thread ... 32-way interleaved rANS").
pub fn decode_interleaved<S: Symbol, P: ModelProvider>(
    stream: &EncodedStream,
    provider: &P,
) -> Result<Vec<S>, RansError> {
    let mut out = vec![S::from_u16(0); stream.num_symbols as usize];
    decode_interleaved_into(stream, provider, &mut out)?;
    Ok(out)
}

/// Serial decode into a caller-provided buffer of exactly `num_symbols`.
pub fn decode_interleaved_into<S: Symbol, P: ModelProvider>(
    stream: &EncodedStream,
    provider: &P,
    out: &mut [S],
) -> Result<(), RansError> {
    stream.validate()?;
    if out.len() as u64 != stream.num_symbols {
        return Err(RansError::MalformedStream(format!(
            "output buffer holds {} symbols, stream has {}",
            out.len(),
            stream.num_symbols
        )));
    }
    let mut states = stream.final_states.clone();
    crate::fast::decode_span(
        provider,
        &stream.words,
        stream.end_cursor(),
        &mut states,
        0,
        out,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::SingleEncoder;
    use crate::sink::{NullSink, VecSink};
    use recoil_models::{CdfTable, StaticModelProvider};

    fn provider(data: &[u8], n: u32) -> StaticModelProvider {
        StaticModelProvider::new(CdfTable::of_bytes(data, n))
    }

    fn sample(len: usize) -> Vec<u8> {
        (0..len as u32)
            .map(|i| ((i.wrapping_mul(2654435761)) >> 23) as u8)
            .collect()
    }

    #[test]
    fn round_trip_default_ways() {
        let data = sample(100_000);
        let p = provider(&data, 11);
        let mut enc = InterleavedEncoder::new_default(&p);
        enc.encode_all(&data, &mut NullSink);
        let stream = enc.finish();
        assert_eq!(stream.ways, 32);
        let back: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn round_trip_many_way_counts_and_lengths() {
        for ways in [1u32, 2, 3, 4, 8, 32, 33] {
            for len in [0usize, 1, 5, 31, 32, 33, 1000, 4097] {
                let data = sample(len);
                if data.is_empty() {
                    let p = provider(b"x", 8);
                    let enc = InterleavedEncoder::new(&p, ways);
                    let stream = enc.finish();
                    let back: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
                    assert!(back.is_empty());
                    continue;
                }
                let p = provider(&data, 10);
                let mut enc = InterleavedEncoder::new(&p, ways);
                enc.encode_all(&data, &mut NullSink);
                let stream = enc.finish();
                let back: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
                assert_eq!(back, data, "ways={ways} len={len}");
            }
        }
    }

    #[test]
    fn one_way_interleaved_matches_single_codec() {
        let data = sample(30_000);
        let p = provider(&data, 12);
        let mut a = InterleavedEncoder::new(&p, 1);
        a.encode_all(&data, &mut NullSink);
        let sa = a.finish();
        let mut b = SingleEncoder::new(&p);
        b.encode_all(&data, &mut NullSink);
        let sb = b.finish();
        assert_eq!(sa.words, sb.words, "identical bitstreams");
        assert_eq!(sa.final_states, sb.final_states);
    }

    #[test]
    fn events_match_words_one_to_one() {
        let data = sample(64_000);
        let p = provider(&data, 11);
        let mut enc = InterleavedEncoder::new(&p, 32);
        let mut sink = VecSink::new();
        enc.encode_all(&data, &mut sink);
        let stream = enc.finish();
        assert_eq!(sink.events.len(), stream.words.len());
        for (k, e) in sink.events.iter().enumerate() {
            assert_eq!(e.offset, k as u64);
            assert!(e.lane < 32);
            if e.pos != NO_SYMBOL {
                // The event's symbol belongs to the event's lane.
                assert_eq!((e.pos % 32) as u32, e.lane);
            }
        }
    }

    #[test]
    fn interleaving_overhead_is_small() {
        // 32 lanes cost at most the final states + per-lane setup vs 1 lane.
        let data = sample(200_000);
        let p = provider(&data, 11);
        let mut one = InterleavedEncoder::new(&p, 1);
        one.encode_all(&data, &mut NullSink);
        let s1 = one.finish();
        let mut many = InterleavedEncoder::new(&p, 32);
        many.encode_all(&data, &mut NullSink);
        let s32 = many.finish();
        let d = s32.payload_bytes() as i64 - s1.payload_bytes() as i64;
        assert!(
            d.unsigned_abs() < 32 * 8,
            "unexpected interleave overhead: {d} bytes"
        );
    }

    #[test]
    fn decode_into_rejects_wrong_buffer() {
        let data = sample(100);
        let p = provider(&data, 8);
        let mut enc = InterleavedEncoder::new(&p, 4);
        enc.encode_all(&data, &mut NullSink);
        let stream = enc.finish();
        let mut small = vec![0u8; 99];
        assert!(decode_interleaved_into(&stream, &p, &mut small).is_err());
    }

    #[test]
    fn adaptive_models_round_trip() {
        use recoil_models::{GaussianScaleBank, LatentModelProvider, LatentSpec};
        use std::sync::Arc;
        let bank = Arc::new(GaussianScaleBank::build(12, 256, 8, 0.5, 32.0));
        let count = 5_000usize;
        let specs: Vec<LatentSpec> = (0..count)
            .map(|i| LatentSpec {
                mean: 1000 + (i % 300) as u16,
                scale_idx: (i % 8) as u8,
            })
            .collect();
        let p = LatentModelProvider::new(bank, specs.clone());
        // Symbols near each position's mean, clamped into the window.
        let data: Vec<u16> = (0..count)
            .map(|i| {
                let d = ((i as i64 * 37) % 41) - 20;
                p.clamp_to_window(specs[i], specs[i].mean as i64 + d)
            })
            .collect();
        let mut enc = InterleavedEncoder::new(&p, 32);
        enc.encode_all(&data, &mut NullSink);
        let stream = enc.finish();
        let back: Vec<u16> = decode_interleaved(&stream, &p).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn n16_freq1_edge_round_trips() {
        // n = 16 with a frequency-1 symbol triggers the "renorm before a
        // lane's first symbol" edge (pos = NO_SYMBOL events).
        let mut data = vec![0u8; 10_000];
        data[137] = 1; // symbol 1 gets frequency 1 at n=16?-> tiny freq
        let p = provider(&data, 16);
        let mut enc = InterleavedEncoder::new(&p, 32);
        let mut sink = VecSink::new();
        enc.encode_all(&data, &mut sink);
        let stream = enc.finish();
        let back: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
        assert_eq!(back, data);
    }
}

#[cfg(test)]
mod invariant_tests {
    use super::*;
    use crate::sink::NullSink;
    use recoil_models::{CdfTable, StaticModelProvider};

    /// The linchpin of Recoil's Sync Phase: with the lazy renorm-before-
    /// transform discipline, the decoder's global read order is the exact
    /// reverse of the encoder's write order. We verify it by decoding with
    /// an instrumented reader that records consumed offsets.
    #[test]
    fn decode_read_order_is_reverse_of_write_order() {
        let data: Vec<u8> = (0..40_000u32)
            .map(|i| (i.wrapping_mul(747796405) >> 23) as u8)
            .collect();
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let mut enc = InterleavedEncoder::new(&p, 32);
        enc.encode_all(&data, &mut NullSink);
        let stream = enc.finish();

        let n = p.quant_bits();
        let mask = (1u32 << n) - 1;
        let mut states = stream.final_states.clone();
        let mut reader = recoil_bitio::BackwardWordReader::from_end(&stream.words);
        let mut read_offsets = Vec::new();
        for pos in (0..stream.num_symbols).rev() {
            let lane = (pos % 32) as usize;
            let mut x = states[lane];
            if x < crate::params::LOWER_BOUND {
                read_offsets.push(reader.offset().expect("word available"));
                x = (x << 16) | reader.next().unwrap() as u32;
            }
            let (nx, _s) = crate::step::decode_transform(x, pos, &p, n, mask);
            states[lane] = nx;
        }
        // Every word is read exactly once, in strictly descending offsets.
        assert_eq!(read_offsets.len(), stream.words.len());
        for (k, &off) in read_offsets.iter().enumerate() {
            assert_eq!(off, (stream.words.len() - 1 - k) as u64);
        }
    }

    /// Encoder lane states stay >= L between symbols, so the transmitted
    /// final states are always full (the last decode task needs no sync).
    #[test]
    fn encoder_states_keep_lower_bound_invariant() {
        let data: Vec<u8> = (0..20_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 26) as u8)
            .collect();
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 12));
        let mut enc = InterleavedEncoder::new(&p, 8);
        for &b in &data {
            enc.encode(b, &mut NullSink);
        }
        let stream = enc.finish();
        assert!(stream
            .final_states
            .iter()
            .all(|&s| s >= crate::params::LOWER_BOUND));
    }
}
