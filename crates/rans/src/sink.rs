//! Renormalization-event reporting.
//!
//! Recoil's key observation (paper §3.2) is that split points should sit at
//! renormalization points, because the state right after a renorm write is
//! below `L = 2^16` and fits a u16. The encoders therefore emit one
//! [`RenormEvent`] per renorm; listeners range from the no-op [`NullSink`]
//! (plain compression) to Recoil's streaming split planner.

/// Sentinel for [`RenormEvent::pos`] when a lane renormalizes before having
/// encoded any symbol (only reachable at `n = 16` with a frequency-1 first
/// symbol). Such events cannot anchor a split.
pub const NO_SYMBOL: u64 = u64::MAX;

/// One renormalization event: lane `lane` emitted the u16 word at
/// `offset`, leaving its state at `state` (< `2^16`), with `pos` being the
/// 0-based position of the last symbol that lane had encoded.
///
/// In the paper's 1-based notation this is the tuple
/// (`x_{i,j}` with `i = pos + 1`, `j = lane + 1`, bitstream offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenormEvent {
    /// 0-based encoder lane.
    pub lane: u32,
    /// 0-based position of the lane's most recent symbol, or [`NO_SYMBOL`].
    pub pos: u64,
    /// Post-renorm state, always below `2^16` (Lemma 3.1).
    pub state: u16,
    /// Word offset the renorm word was written at.
    pub offset: u64,
}

/// Receives renormalization events during encoding.
pub trait RenormSink {
    /// Called once per emitted renorm word, in write order.
    fn on_renorm(&mut self, event: RenormEvent);
}

/// Ignores all events (plain, non-splittable encoding).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl RenormSink for NullSink {
    #[inline(always)]
    fn on_renorm(&mut self, _event: RenormEvent) {}
}

/// Records every event; used by tests and small-input split planning.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// Events in write order.
    pub events: Vec<RenormEvent>,
}

impl VecSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RenormSink for VecSink {
    #[inline]
    fn on_renorm(&mut self, event: RenormEvent) {
        self.events.push(event);
    }
}

impl<S: RenormSink + ?Sized> RenormSink for &mut S {
    #[inline(always)]
    fn on_renorm(&mut self, event: RenormEvent) {
        (**self).on_renorm(event);
    }
}
