//! Error type shared by the rANS codec paths.

use std::fmt;

/// Failures of the rANS substrate. Decoding can fail on truncated or
/// inconsistent input; encoding can fail only one way — a symbol the model
/// assigns zero probability mass, which no finite state transform can
/// represent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RansError {
    /// A lane needed a renormalization word but the bitstream was exhausted.
    /// Indicates a truncated/corrupt stream or mismatched metadata.
    BitstreamUnderflow {
        /// 0-based position of the symbol being decoded when it happened.
        pos: u64,
    },
    /// Stream header fields are inconsistent (e.g. lane count of zero, or
    /// final-state count not matching the lane count).
    MalformedStream(String),
    /// Split metadata references positions or offsets outside the stream.
    MalformedMetadata(String),
    /// An encoder was asked to encode a symbol whose quantized frequency is
    /// zero — the model cannot represent it at any stream length (the state
    /// transform would divide by zero).
    ZeroFrequency {
        /// 0-based position of the unencodable symbol.
        pos: u64,
        /// The symbol value itself.
        sym: u16,
    },
}

impl fmt::Display for RansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BitstreamUnderflow { pos } => {
                write!(
                    f,
                    "bitstream underflow while decoding symbol position {pos}"
                )
            }
            Self::MalformedStream(msg) => write!(f, "malformed stream: {msg}"),
            Self::MalformedMetadata(msg) => write!(f, "malformed metadata: {msg}"),
            Self::ZeroFrequency { pos, sym } => {
                write!(
                    f,
                    "symbol {sym} at position {pos} has zero quantized frequency \
                     and cannot be encoded"
                )
            }
        }
    }
}

impl std::error::Error for RansError {}
