//! Error type shared by the rANS decode paths.

use std::fmt;

/// Decode-side failures. Encoding cannot fail (given a valid model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RansError {
    /// A lane needed a renormalization word but the bitstream was exhausted.
    /// Indicates a truncated/corrupt stream or mismatched metadata.
    BitstreamUnderflow {
        /// 0-based position of the symbol being decoded when it happened.
        pos: u64,
    },
    /// Stream header fields are inconsistent (e.g. lane count of zero, or
    /// final-state count not matching the lane count).
    MalformedStream(String),
    /// Split metadata references positions or offsets outside the stream.
    MalformedMetadata(String),
}

impl fmt::Display for RansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BitstreamUnderflow { pos } => {
                write!(
                    f,
                    "bitstream underflow while decoding symbol position {pos}"
                )
            }
            Self::MalformedStream(msg) => write!(f, "malformed stream: {msg}"),
            Self::MalformedMetadata(msg) => write!(f, "malformed metadata: {msg}"),
        }
    }
}

impl std::error::Error for RansError {}
