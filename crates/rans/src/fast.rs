//! The fast-loop / careful-tail decode engine — the scalar hot path every
//! decoder in the workspace runs through.
//!
//! # Why it exists
//!
//! The per-symbol decode step is three cheap operations (renormalize,
//! table lookup, state update — Eq. 2 / Eq. 4), but the straightforward
//! loop pays for much more than that on every symbol: a `Result`-wrapped
//! underflow check, a bounds-checked `words[p]` read through an
//! `Option<u64>` cursor, a 64-bit `pos % ways` division to find the owning
//! lane, and a bounds-checked output write. Giesen's interleaved entropy
//! coders observation (PAPERS.md) removes all of it: because `b >= n`,
//! **each symbol consumes at most one renormalization word** (Lemma 3.1's
//! precondition, see [`crate::params`]), so a group of `GROUP` symbols can
//! run entirely check-free whenever at least `GROUP` unread words remain.
//!
//! # Structure
//!
//! [`decode_span`] is the engine: an outer loop runs while
//! `remaining_symbols >= GROUP && words_left >= GROUP`; the inner
//! `GROUP`-symbol loop is branchless (the renorm is a speculative in-bounds
//! load plus a conditional move), uses `get_unchecked` word reads justified
//! by the word budget, tracks the owning lane with a rotating counter
//! instead of `pos % ways`, hoists `n`/`mask`, and writes output through a
//! per-group chunk so the write bounds check happens once per `GROUP`
//! symbols. Once either budget runs out, the remaining symbols go through
//! [`decode_span_careful`] — the original [`LaneDecoder::step`] loop, which
//! stays both the **careful tail** (it reports
//! [`RansError::BitstreamUnderflow`] on truncated streams) and the
//! **bit-exactness reference** the fast loop is tested against.
//!
//! # Safety invariant
//!
//! The only `unsafe` here is `get_unchecked` on the word stream, the lane
//! states, and the per-group output chunk. Each is justified by a loop
//! invariant, restated at the call site and checked by debug assertions:
//!
//! * **words**: the entry assertion pins `p < words.len()`; the outer loop
//!   guard establishes `p >= GROUP - 1`, and each of the `GROUP` inner
//!   symbols decrements `p` at most once, so every read index stays in
//!   `0 ..= p_entry`.
//! * **states**: the rotating `lane` starts at `hi % ways` and wraps
//!   modulo `states.len()`, so it is always `< states.len()`.
//! * **output**: the group chunk is taken with a checked slice once per
//!   group; the inner loop walks it with an exact-length iterator.

use crate::params::{LOWER_BOUND, RENORM_BITS};
use crate::step::LaneDecoder;
use crate::RansError;
use recoil_bitio::BackwardWordReader;
use recoil_models::{ModelProvider, Symbol};

/// Symbols per unchecked batch of the fast loop. 32 matches the default
/// lane count, but the engine does not require `ways == GROUP` — any
/// interleave width works, because the budget argument only needs "at most
/// one word per symbol".
pub const GROUP: usize = 32;

/// Per-span decode-engine statistics, filled by
/// [`decode_span_with_stats`]: how much work the branchless fast loop did
/// versus the careful tail, and how many compressed words the span ate.
///
/// Plain data by design — `recoil-rans` is leaf code and knows nothing
/// about telemetry handles; callers fold these into whatever counters they
/// keep. The cost of collecting them is one add per *group* (not per
/// symbol) plus arithmetic on the already-tracked cursor, so the stats
/// variant is the implementation and [`decode_span`] is a thin wrapper.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Full `GROUP`-symbol iterations the branchless fast loop ran.
    pub fast_groups: u64,
    /// Symbols decoded by the fast loop (`fast_groups * GROUP`).
    pub fast_symbols: u64,
    /// Symbols decoded by the bounds-checked careful tail.
    pub careful_symbols: u64,
    /// Compressed u16 words consumed by renormalizations in this span.
    pub words_consumed: u64,
}

impl SpanStats {
    /// Folds another span's stats into this one (for per-task or global
    /// accumulation across chained spans).
    pub fn merge(&mut self, other: &SpanStats) {
        self.fast_groups = self.fast_groups.wrapping_add(other.fast_groups);
        self.fast_symbols = self.fast_symbols.wrapping_add(other.fast_symbols);
        self.careful_symbols = self.careful_symbols.wrapping_add(other.careful_symbols);
        self.words_consumed = self.words_consumed.wrapping_add(other.words_consumed);
    }

    /// Total symbols this span decoded.
    pub fn symbols(&self) -> u64 {
        self.fast_symbols.wrapping_add(self.careful_symbols)
    }
}

/// Decodes positions `lo .. lo + out.len()` (descending) of a
/// `states.len()`-way interleaved stream, starting from the backward word
/// cursor `next_read` (`None` = exhausted). Returns the cursor after the
/// span so callers can chain spans.
///
/// This is the engine behind [`crate::decode_interleaved_into`], the
/// three-phase segment decoder in `recoil-core`, and (with its own aligned
/// specialization) the SIMD crate's scalar groups. Output, lane states and
/// the returned cursor are bit-identical to [`decode_span_careful`]; the
/// differential suites enforce it.
///
/// # Errors
///
/// [`RansError::BitstreamUnderflow`] when a renormalization needs a word
/// the stream does not have (always detected in the careful tail — the
/// fast loop only runs while the word budget makes underflow impossible).
///
/// # Panics
///
/// If `states` is empty or `next_read` is `Some(o)` with
/// `o >= words.len()` — caller bugs, not data errors (both are checked
/// once per call; the unchecked inner loop relies on them).
pub fn decode_span<S: Symbol, P: ModelProvider + ?Sized>(
    provider: &P,
    words: &[u16],
    next_read: Option<u64>,
    states: &mut [u32],
    lo: u64,
    out: &mut [S],
) -> Result<Option<u64>, RansError> {
    decode_span_with_stats(provider, words, next_read, states, lo, out).map(|(cursor, _)| cursor)
}

/// [`decode_span`] plus [`SpanStats`] describing how the span decoded. On
/// error the stats are lost along with the (partial) output — underflow
/// already means the whole span is unusable.
pub fn decode_span_with_stats<S: Symbol, P: ModelProvider + ?Sized>(
    provider: &P,
    words: &[u16],
    next_read: Option<u64>,
    states: &mut [u32],
    lo: u64,
    out: &mut [S],
) -> Result<(Option<u64>, SpanStats), RansError> {
    assert!(!states.is_empty(), "need at least one lane state");
    let ways = states.len();
    let n = provider.quant_bits();
    let mask = (1u32 << n) - 1;

    // Backward cursor as a raw index: offset of the next unread word, -1
    // once exhausted. The assertion (not a debug assertion: the unchecked
    // reads below rely on it) pins `p < words.len()`, and `p` only ever
    // decreases.
    let mut p: isize = match next_read {
        Some(o) => {
            assert!(
                (o as usize) < words.len(),
                "cursor {o} out of range for {} words",
                words.len()
            );
            o as isize
        }
        None => -1,
    };

    let entry_p = p;
    let mut fast_groups = 0u64;

    let mut remaining = out.len();
    // Lane owning the highest (first-decoded) position, then maintained by
    // rotation — the one `% ways` of the whole span.
    let mut lane = if remaining == 0 {
        0
    } else {
        ((lo + remaining as u64 - 1) % ways as u64) as usize
    };

    // Fast loop: GROUP symbols per iteration, no underflow Result, no
    // bounds checks, branchless renorm.
    while remaining >= GROUP && p >= GROUP as isize - 1 {
        fast_groups += 1;
        let base = remaining - GROUP;
        let mut pos = lo + remaining as u64;
        // One checked slice per group; the iterator below is exact-length.
        let chunk = &mut out[base..remaining];
        for slot_out in chunk.iter_mut().rev() {
            pos -= 1;
            debug_assert!(lane < ways);
            // SAFETY: `lane` starts `< ways == states.len()` and the
            // rotation below keeps it there.
            let x = unsafe { *states.get_unchecked(lane) };
            debug_assert!(p >= 0 && (p as usize) < words.len());
            // SAFETY: the loop guard established `p >= GROUP - 1` at group
            // entry, each symbol decrements `p` at most once, and the
            // entry assertion pinned `p < words.len()`; so `0 <= p` holds
            // for every one of the GROUP speculative loads here.
            let w = unsafe { *words.get_unchecked(p as usize) } as u32;
            let renorm = x < LOWER_BOUND;
            // Both arms are side-effect free: LLVM lowers this to cmov.
            let x = if renorm { (x << RENORM_BITS) | w } else { x };
            p -= renorm as isize;
            debug_assert!(x >= LOWER_BOUND, "state must recover in one step");
            let slot = x & mask;
            let (sym, f, c) = provider.lookup(pos, slot);
            debug_assert!(f > 0, "decoded a zero-frequency slot");
            // SAFETY: same `lane < states.len()` invariant as the read.
            unsafe { *states.get_unchecked_mut(lane) = f * (x >> n) + slot - c };
            *slot_out = S::from_u16(sym);
            lane = if lane == 0 { ways - 1 } else { lane - 1 };
        }
        remaining = base;
    }

    // Careful tail: either fewer than GROUP symbols remain, or the word
    // stream is nearly drained (underflow is now possible and must be
    // reported). `decode_span_careful` re-derives the lane by modulo; the
    // states and cursor hand over exactly.
    let cursor = decode_span_careful(
        provider,
        words,
        (p >= 0).then_some(p as u64),
        states,
        lo,
        &mut out[..remaining],
    )?;

    let final_p = cursor.map_or(-1, |o| o as isize);
    let stats = SpanStats {
        fast_groups,
        fast_symbols: (out.len() - remaining) as u64,
        careful_symbols: remaining as u64,
        words_consumed: (entry_p - final_p) as u64,
    };
    Ok((cursor, stats))
}

/// The retained careful reference loop: one [`LaneDecoder::step`] per
/// symbol with `pos % ways` lane selection and `Result`-checked reads —
/// exactly the loop every decoder ran before the fast engine existed.
///
/// [`decode_span`] must be bit-identical to this function (same output,
/// same final `states`, same returned cursor, same errors); it is kept
/// public as the tail path, as the reference for differential tests, and
/// as the baseline column of `BENCH_decode.json`.
pub fn decode_span_careful<S: Symbol, P: ModelProvider + ?Sized>(
    provider: &P,
    words: &[u16],
    next_read: Option<u64>,
    states: &mut [u32],
    lo: u64,
    out: &mut [S],
) -> Result<Option<u64>, RansError> {
    assert!(!states.is_empty(), "need at least one lane state");
    let ways = states.len() as u64;
    let n = provider.quant_bits();
    let mask = (1u32 << n) - 1;
    let mut reader = BackwardWordReader::at(words, next_read);
    for rel in (0..out.len()).rev() {
        let pos = lo + rel as u64;
        let lane = (pos % ways) as usize;
        let mut ld = LaneDecoder { x: states[lane] };
        let sym = ld.step(pos, provider, n, mask, &mut reader)?;
        states[lane] = ld.x;
        out[rel] = S::from_u16(sym);
    }
    Ok(reader.offset())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;
    use crate::InterleavedEncoder;
    use recoil_models::{CdfTable, StaticModelProvider};

    fn provider(data: &[u8], n: u32) -> StaticModelProvider {
        StaticModelProvider::new(CdfTable::of_bytes(data, n))
    }

    fn sample(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 23) as u8)
            .collect()
    }

    fn encode(data: &[u8], n: u32, ways: u32) -> (crate::EncodedStream, StaticModelProvider) {
        let p = provider(data, n);
        let mut enc = InterleavedEncoder::new(&p, ways);
        enc.encode_all(data, &mut NullSink);
        (enc.finish(), p)
    }

    /// Fast engine vs careful reference: identical symbols, final states,
    /// and returned cursor, across lane widths and lengths straddling
    /// every group-boundary shape.
    #[test]
    fn fast_matches_careful_across_ways_and_lengths() {
        for ways in [1u32, 2, 3, 7, 32, 33] {
            for len in [0usize, 1, 31, 32, 33, 63, 64, 65, 1000, 4097, 40_000] {
                let data = sample(len, ways * 31 + len as u32);
                if data.is_empty() {
                    continue;
                }
                let (stream, p) = encode(&data, 10, ways);
                let next = stream.end_cursor();

                let mut fast_states = stream.final_states.clone();
                let mut fast_out = vec![0u8; len];
                let fast_cursor =
                    decode_span(&p, &stream.words, next, &mut fast_states, 0, &mut fast_out)
                        .unwrap();

                let mut ref_states = stream.final_states.clone();
                let mut ref_out = vec![0u8; len];
                let ref_cursor =
                    decode_span_careful(&p, &stream.words, next, &mut ref_states, 0, &mut ref_out)
                        .unwrap();

                assert_eq!(fast_out, data, "ways={ways} len={len}");
                assert_eq!(ref_out, data, "ways={ways} len={len}");
                assert_eq!(fast_states, ref_states, "ways={ways} len={len}");
                assert_eq!(fast_cursor, ref_cursor, "ways={ways} len={len}");
            }
        }
    }

    /// Highly compressible data exhausts the word budget long before the
    /// symbols run out — the fast loop must hand a long remainder to the
    /// careful tail and still be exact.
    #[test]
    fn skewed_data_with_long_careful_tail() {
        let mut data = vec![0u8; 120_000];
        for (i, b) in data.iter_mut().enumerate() {
            if i % 29 == 0 {
                *b = (i % 5) as u8 + 1;
            }
        }
        let (stream, p) = encode(&data, 12, 32);
        // Few words per symbol on purpose.
        assert!(stream.words.len() * 4 < data.len());
        let next = Some(stream.words.len() as u64 - 1);
        let mut states = stream.final_states.clone();
        let mut out = vec![0u8; data.len()];
        decode_span(&p, &stream.words, next, &mut states, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    /// Chained spans (the segment decoder's usage) equal one full span for
    /// arbitrary cut points, fast vs fast and fast vs careful.
    #[test]
    fn chained_spans_hand_over_cursor_and_states() {
        let data = sample(50_000, 9);
        let (stream, p) = encode(&data, 11, 32);
        for cut in [1usize, 31, 32, 33, 4096, 49_999] {
            let next = Some(stream.words.len() as u64 - 1);
            let mut states = stream.final_states.clone();
            let mut hi = vec![0u8; data.len() - cut];
            let mid =
                decode_span(&p, &stream.words, next, &mut states, cut as u64, &mut hi).unwrap();
            let mut lo_part = vec![0u8; cut];
            decode_span(&p, &stream.words, mid, &mut states, 0, &mut lo_part).unwrap();
            assert_eq!(&hi[..], &data[cut..], "cut={cut}");
            assert_eq!(&lo_part[..], &data[..cut], "cut={cut}");
        }
    }

    /// Truncated streams report underflow (from the careful tail) exactly
    /// like the reference loop — never a silent misdecode past the head.
    #[test]
    fn truncated_streams_underflow_like_the_reference() {
        let data = sample(30_000, 4);
        let (stream, p) = encode(&data, 11, 32);
        let mut truncated = stream.words.clone();
        truncated.truncate(truncated.len() / 2);
        let next = (!truncated.is_empty()).then(|| truncated.len() as u64 - 1);

        let mut fast_states = stream.final_states.clone();
        let mut out = vec![0u8; data.len()];
        let fast = decode_span(&p, &truncated, next, &mut fast_states, 0, &mut out);

        let mut ref_states = stream.final_states.clone();
        let mut ref_out = vec![0u8; data.len()];
        let reference = decode_span_careful(&p, &truncated, next, &mut ref_states, 0, &mut ref_out);

        match (fast, reference) {
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("expected matching underflow errors, got {a:?} vs {b:?}"),
        }
    }

    /// The stats account for every symbol and every consumed word, and the
    /// stats variant stays bit-identical to the plain one.
    #[test]
    fn span_stats_account_for_symbols_and_words() {
        for (len, ways) in [(40_000usize, 32u32), (100, 4), (31, 32)] {
            let data = sample(len, 77);
            let (stream, p) = encode(&data, 10, ways);
            let next = stream.end_cursor();
            let mut states = stream.final_states.clone();
            let mut out = vec![0u8; len];
            let (cursor, stats) =
                decode_span_with_stats(&p, &stream.words, next, &mut states, 0, &mut out).unwrap();
            assert_eq!(out, data, "len={len} ways={ways}");
            assert_eq!(stats.symbols(), len as u64, "every symbol is accounted");
            assert_eq!(
                stats.fast_symbols,
                stats.fast_groups * GROUP as u64,
                "fast symbols come in whole groups"
            );
            let entry = next.map_or(0, |o| o + 1);
            let left = cursor.map_or(0, |o| o + 1);
            assert_eq!(stats.words_consumed, entry - left, "len={len} ways={ways}");
            if len >= 2 * GROUP {
                assert!(stats.fast_groups > 0, "long spans must hit the fast loop");
            }
        }
        let mut total = SpanStats::default();
        total.merge(&SpanStats {
            fast_groups: 1,
            fast_symbols: 32,
            careful_symbols: 3,
            words_consumed: 20,
        });
        total.merge(&SpanStats {
            fast_groups: 2,
            fast_symbols: 64,
            careful_symbols: 0,
            words_consumed: 40,
        });
        assert_eq!(total.symbols(), 99);
        assert_eq!(total.words_consumed, 60);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cursor_is_a_caller_bug() {
        let data = sample(100, 1);
        let (stream, p) = encode(&data, 8, 4);
        let mut states = stream.final_states.clone();
        let mut out = vec![0u8; 100];
        let _ = decode_span(
            &p,
            &stream.words,
            Some(stream.words.len() as u64),
            &mut states,
            0,
            &mut out,
        );
    }
}
