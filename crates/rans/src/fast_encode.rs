//! The fast-loop / careful-tail **encode** engine — the write-side twin of
//! [`crate::fast`].
//!
//! # Why it exists
//!
//! The per-symbol encode step is as cheap as the decode step (threshold
//! compare, one renorm word, state transform — Def. 2.2), but the
//! straightforward loop pays the same overheads the decode side shed in its
//! fast engine: a 64-bit `pos % ways` division to find the owning lane, a
//! branchy renormalization with a per-word `Vec` push, and a virtual-feeling
//! per-event sink call. Giesen's interleaved entropy coders observation
//! applies symmetrically: because `b >= n`, **each symbol emits at most one
//! renormalization word** (Lemma 3.1's precondition, see [`crate::params`]),
//! so a group of [`GROUP`] symbols has a hard word budget of `GROUP` — the
//! group can run branchless into fixed-size scratch and flush once.
//!
//! # Structure
//!
//! [`encode_span`] is the engine: the outer loop takes whole `GROUP`-symbol
//! chunks; the inner loop is branchless — the renormalization is a
//! speculative scratch store plus a cmov-style select (`x >> 16` vs `x`)
//! with the scratch cursor advanced by `renorm as usize`, the owning lane is
//! a rotating counter instead of `pos % ways`, and `n`/the shift are
//! hoisted. Words and renorm events accumulate in per-group scratch and are
//! flushed in one `extend_from_slice` plus one (usually empty, for
//! [`NullSink`]) event drain per group. The sub-group remainder goes through
//! [`encode_span_careful`] — the original per-symbol loop, which stays both
//! the **careful tail** and the **bit-exactness reference** the fast loop is
//! tested against. [`scan_span`] is the same inner loop compiled without
//! word storage: it evolves lane states and streams renorm events (the split
//! planner's food) while only *counting* words — the cheap first pass of the
//! segment-parallel encoder in `recoil-core`.
//!
//! Unlike decoding, encoding has no underflow hazard — the output stream
//! grows as needed — so the fast loop covers every whole group and only the
//! `len % GROUP` remainder is careful. The one failure mode is a symbol with
//! zero quantized frequency (the state transform would divide by zero); the
//! fast loop substitutes a divisor of 1, accumulates an `any_zero` flag, and
//! reports a typed [`RansError::ZeroFrequency`] once per group before any
//! result is used — identical to the error the careful loop raises at the
//! same symbol.
//!
//! # Safety invariant
//!
//! The only `unsafe` here is `get_unchecked` on the lane states, justified
//! by the same invariant as the decode engine and checked by debug
//! assertions: the rotating `lane` starts at `lo % ways` and wraps modulo
//! `states.len()`, so it is always `< states.len()`. The per-group scratch
//! writes need no `unsafe` at all — the scratch cursor is masked with
//! `GROUP - 1` (a no-op for in-budget cursors, see the comment at the store
//! site), which makes the indices provably in bounds.

use crate::params::{self, RENORM_BITS};
use crate::sink::{RenormEvent, RenormSink, NO_SYMBOL};
use crate::RansError;
use recoil_models::{ModelProvider, Symbol};

pub use crate::fast::GROUP;

/// Encodes `data` (positions `lo .. lo + data.len()`, ascending) onto the
/// `states.len()`-way interleaved lane states, appending renormalization
/// words to `out` and reporting one [`RenormEvent`] per word to `sink`.
/// Returns the number of words written.
///
/// `word_base` is the global offset of the next word `out` receives — event
/// offsets are `word_base + k` for the `k`-th word of this span, so chained
/// spans (and the segment-parallel encoder) produce globally consistent
/// event streams. Events are delivered in write order, as
/// [`RenormSink::on_renorm`] requires, batched once per group.
///
/// Output words, final lane states, and the event sequence are bit-identical
/// to [`encode_span_careful`] (and therefore to
/// [`crate::InterleavedEncoder::encode`] symbol by symbol); the differential
/// suites enforce it.
///
/// # Errors
///
/// [`RansError::ZeroFrequency`] at the first symbol the model gives no
/// probability mass. On error the lane states and `out` tail are
/// unspecified — the span is unusable, exactly like a decode-side underflow.
///
/// # Panics
///
/// If `states` is empty — a caller bug, not a data error.
pub fn encode_span<S: Symbol, P: ModelProvider + ?Sized>(
    provider: &P,
    data: &[S],
    lo: u64,
    states: &mut [u32],
    out: &mut Vec<u16>,
    word_base: u64,
    sink: &mut impl RenormSink,
) -> Result<u64, RansError> {
    span_impl::<true, S, P>(provider, data, lo, states, out, word_base, sink)
}

/// The state-scan variant of [`encode_span`]: identical lane-state
/// evolution, identical renorm events, but no word storage — only the word
/// *count* is returned. This is the cheap planning pass of the
/// segment-parallel encoder: it feeds the split planner and captures
/// boundary lane states without materializing the bitstream twice.
pub fn scan_span<S: Symbol, P: ModelProvider + ?Sized>(
    provider: &P,
    data: &[S],
    lo: u64,
    states: &mut [u32],
    word_base: u64,
    sink: &mut impl RenormSink,
) -> Result<u64, RansError> {
    let mut unused = Vec::new();
    let written =
        span_impl::<false, S, P>(provider, data, lo, states, &mut unused, word_base, sink)?;
    debug_assert!(unused.is_empty(), "scan must not materialize words");
    Ok(written)
}

/// The retained careful reference loop: one bounds-checked, branchy encode
/// step per symbol with `pos % ways` lane selection — exactly the
/// [`crate::InterleavedEncoder::encode`] arithmetic, span-shaped.
///
/// [`encode_span`] must be bit-identical to this function (same words, same
/// final `states`, same events, same errors); it is kept public as the tail
/// path, as the reference for differential tests, and as the baseline
/// column of `BENCH_encode.json`.
pub fn encode_span_careful<S: Symbol, P: ModelProvider + ?Sized>(
    provider: &P,
    data: &[S],
    lo: u64,
    states: &mut [u32],
    out: &mut Vec<u16>,
    word_base: u64,
    sink: &mut impl RenormSink,
) -> Result<u64, RansError> {
    careful_impl::<true, S, P>(provider, data, lo, states, out, word_base, sink)
}

/// Shared engine. `COLLECT` selects whether words are materialized
/// (`encode_span`) or merely counted (`scan_span`); it is a const generic so
/// the scan monomorphization carries no dead stores.
#[inline(always)]
fn span_impl<const COLLECT: bool, S: Symbol, P: ModelProvider + ?Sized>(
    provider: &P,
    data: &[S],
    lo: u64,
    states: &mut [u32],
    out: &mut Vec<u16>,
    word_base: u64,
    sink: &mut impl RenormSink,
) -> Result<u64, RansError> {
    assert!(!states.is_empty(), "need at least one lane state");
    let ways = states.len();
    let n = provider.quant_bits();
    let shift = 32 - n;

    // Lane owning the first position, then maintained by rotation — the one
    // `% ways` of the whole span.
    let mut lane = (lo % ways as u64) as usize;
    let mut pos = lo;
    let mut written = 0u64;

    let mut groups = data.chunks_exact(GROUP);
    for chunk in &mut groups {
        // Per-group scratch: the word budget (at most one word per symbol,
        // Lemma 3.1) caps all three at GROUP entries.
        let mut words_buf = [0u16; GROUP];
        let mut ev_pos = [0u64; GROUP];
        let mut ev_state = [0u16; GROUP];
        let mut wcur = 0usize;
        let mut any_zero = false;

        for &s in chunk {
            debug_assert!(lane < ways);
            // SAFETY: `lane` starts `< ways == states.len()` and the
            // rotation below keeps it there.
            let x = unsafe { *states.get_unchecked(lane) };
            let (f, c) = provider.stats(pos, s.to_u16());
            // Zero frequency means the divide below is undefined; substitute
            // a divisor of 1 and flag the group (cold check after the loop).
            any_zero |= f == 0;
            let fs = f | (f == 0) as u32;
            let renorm = (x as u64) >= (f as u64) << shift;
            // Speculative scratch stores; the cursor advances only on a
            // renorm, so a non-renorm symbol's stores are overwritten. The
            // `& (GROUP - 1)` mask is a no-op (`wcur < GROUP` at every
            // store: at most one increment per symbol of the GROUP-symbol
            // chunk, and stores precede the increment) that makes the index
            // provably in bounds — no bounds check, no `unsafe`.
            if COLLECT {
                words_buf[wcur & (GROUP - 1)] = x as u16;
            }
            ev_pos[wcur & (GROUP - 1)] = pos;
            ev_state[wcur & (GROUP - 1)] = (x >> RENORM_BITS) as u16;
            // Both arms are side-effect free: LLVM lowers this to cmov.
            let xr = if renorm { x >> RENORM_BITS } else { x };
            wcur += renorm as usize;
            debug_assert!(
                !renorm || ((xr as u64) < (fs as u64) << shift),
                "one-step renorm violated"
            );
            // SAFETY: same `lane < states.len()` invariant as the read.
            unsafe { *states.get_unchecked_mut(lane) = ((xr / fs) << n) + c + (xr % fs) };
            lane += 1;
            if lane == ways {
                lane = 0;
            }
            pos += 1;
        }

        if any_zero {
            // Cold path: rescan the group for the first offender so the
            // error matches the careful loop's symbol exactly.
            let gbase = pos - GROUP as u64;
            for (k, &s) in chunk.iter().enumerate() {
                if provider.stats(gbase + k as u64, s.to_u16()).0 == 0 {
                    return Err(RansError::ZeroFrequency {
                        pos: gbase + k as u64,
                        sym: s.to_u16(),
                    });
                }
            }
            unreachable!("a zero frequency was observed in this group");
        }

        if COLLECT {
            out.extend_from_slice(&words_buf[..wcur]);
        }
        // Event drain, in write order. For `NullSink` this loop (and the
        // event scratch feeding it) compiles away.
        for k in 0..wcur {
            let p = ev_pos[k];
            sink.on_renorm(RenormEvent {
                lane: (p % ways as u64) as u32,
                pos: p.checked_sub(ways as u64).unwrap_or(NO_SYMBOL),
                state: ev_state[k],
                offset: word_base + written + k as u64,
            });
        }
        written += wcur as u64;
    }

    // Careful tail: the sub-group remainder re-derives the lane by modulo;
    // the states and word count hand over exactly.
    written += careful_impl::<COLLECT, S, P>(
        provider,
        groups.remainder(),
        pos,
        states,
        out,
        word_base + written,
        sink,
    )?;
    Ok(written)
}

/// Per-symbol reference/tail loop, `COLLECT`-gated like [`span_impl`].
fn careful_impl<const COLLECT: bool, S: Symbol, P: ModelProvider + ?Sized>(
    provider: &P,
    data: &[S],
    lo: u64,
    states: &mut [u32],
    out: &mut Vec<u16>,
    word_base: u64,
    sink: &mut impl RenormSink,
) -> Result<u64, RansError> {
    assert!(!states.is_empty(), "need at least one lane state");
    let ways = states.len() as u64;
    let n = provider.quant_bits();
    let mut written = 0u64;
    for (k, &s) in data.iter().enumerate() {
        let pos = lo + k as u64;
        let lane = (pos % ways) as usize;
        let (f, c) = provider.stats(pos, s.to_u16());
        if f == 0 {
            return Err(RansError::ZeroFrequency {
                pos,
                sym: s.to_u16(),
            });
        }
        let mut x = states[lane];
        if (x as u64) >= params::renorm_threshold(f, n) {
            if COLLECT {
                out.push(x as u16);
            }
            x >>= RENORM_BITS;
            debug_assert!(x < params::LOWER_BOUND, "one-step renorm violated");
            sink.on_renorm(RenormEvent {
                lane: lane as u32,
                pos: pos.checked_sub(ways).unwrap_or(NO_SYMBOL),
                state: x as u16,
                offset: word_base + written,
            });
            written += 1;
        }
        states[lane] = ((x / f) << n) + c + (x % f);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::INITIAL_STATE;
    use crate::sink::{NullSink, VecSink};
    use crate::InterleavedEncoder;
    use recoil_models::{CdfTable, StaticModelProvider};

    fn provider(data: &[u8], n: u32) -> StaticModelProvider {
        StaticModelProvider::new(CdfTable::of_bytes(data, n))
    }

    fn sample(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 23) as u8)
            .collect()
    }

    /// Fast engine vs the per-symbol `InterleavedEncoder`: identical words,
    /// final states, and events, across lane widths and lengths straddling
    /// every group-boundary shape.
    #[test]
    fn fast_matches_interleaved_encoder_across_ways_and_lengths() {
        for ways in [1u32, 2, 3, 7, 32, 33] {
            for len in [0usize, 1, 31, 32, 33, 63, 64, 65, 1000, 4097, 40_000] {
                let data = sample(len, ways * 31 + len as u32);
                let p = provider(if data.is_empty() { b"x" } else { &data }, 10);

                let mut fast_states = vec![INITIAL_STATE; ways as usize];
                let mut fast_words = Vec::new();
                let mut fast_sink = VecSink::new();
                let written = encode_span(
                    &p,
                    &data,
                    0,
                    &mut fast_states,
                    &mut fast_words,
                    0,
                    &mut fast_sink,
                )
                .unwrap();
                assert_eq!(written as usize, fast_words.len());

                let mut reference = InterleavedEncoder::new(&p, ways);
                let mut ref_sink = VecSink::new();
                reference.encode_all(&data, &mut ref_sink);
                let ref_stream = reference.finish();

                assert_eq!(fast_words, ref_stream.words, "ways={ways} len={len}");
                assert_eq!(
                    fast_states, ref_stream.final_states,
                    "ways={ways} len={len}"
                );
                assert_eq!(fast_sink.events, ref_sink.events, "ways={ways} len={len}");
            }
        }
    }

    /// `scan_span` sees the exact same state evolution, events, and word
    /// count as `encode_span` — without producing words.
    #[test]
    fn scan_matches_encode_evolution() {
        for (len, ways) in [(40_000usize, 32u32), (100, 4), (31, 32), (65, 1)] {
            let data = sample(len, 11);
            let p = provider(&data, 11);

            let mut enc_states = vec![INITIAL_STATE; ways as usize];
            let mut words = Vec::new();
            let mut enc_sink = VecSink::new();
            let enc_written =
                encode_span(&p, &data, 0, &mut enc_states, &mut words, 0, &mut enc_sink).unwrap();

            let mut scan_states = vec![INITIAL_STATE; ways as usize];
            let mut scan_sink = VecSink::new();
            let scan_written =
                scan_span(&p, &data, 0, &mut scan_states, 0, &mut scan_sink).unwrap();

            assert_eq!(enc_written, scan_written, "len={len} ways={ways}");
            assert_eq!(enc_states, scan_states, "len={len} ways={ways}");
            assert_eq!(enc_sink.events, scan_sink.events, "len={len} ways={ways}");
        }
    }

    /// Chained spans (the segment-parallel encoder's usage) equal one full
    /// span for arbitrary cut points: words concatenate, events continue
    /// with consistent offsets, states hand over.
    #[test]
    fn chained_spans_concatenate_exactly() {
        let data = sample(50_000, 9);
        let p = provider(&data, 11);
        let mut whole_states = vec![INITIAL_STATE; 32];
        let mut whole_words = Vec::new();
        let mut whole_sink = VecSink::new();
        encode_span(
            &p,
            &data,
            0,
            &mut whole_states,
            &mut whole_words,
            0,
            &mut whole_sink,
        )
        .unwrap();

        for cut in [1usize, 31, 32, 33, 4096, 49_999] {
            let mut states = vec![INITIAL_STATE; 32];
            let mut words = Vec::new();
            let mut sink = VecSink::new();
            let first =
                encode_span(&p, &data[..cut], 0, &mut states, &mut words, 0, &mut sink).unwrap();
            encode_span(
                &p,
                &data[cut..],
                cut as u64,
                &mut states,
                &mut words,
                first,
                &mut sink,
            )
            .unwrap();
            assert_eq!(words, whole_words, "cut={cut}");
            assert_eq!(states, whole_states, "cut={cut}");
            assert_eq!(sink.events, whole_sink.events, "cut={cut}");
        }
    }

    /// A non-zero `word_base` shifts every event offset and nothing else.
    #[test]
    fn word_base_offsets_events_only() {
        let data = sample(5_000, 3);
        let p = provider(&data, 11);
        let run = |base: u64| {
            let mut states = vec![INITIAL_STATE; 32];
            let mut words = Vec::new();
            let mut sink = VecSink::new();
            encode_span(&p, &data, 0, &mut states, &mut words, base, &mut sink).unwrap();
            (words, states, sink.events)
        };
        let (w0, s0, e0) = run(0);
        let (w9, s9, e9) = run(900);
        assert_eq!(w0, w9);
        assert_eq!(s0, s9);
        assert_eq!(e0.len(), e9.len());
        for (a, b) in e0.iter().zip(&e9) {
            assert_eq!(a.offset + 900, b.offset);
            assert_eq!((a.lane, a.pos, a.state), (b.lane, b.pos, b.state));
        }
    }

    /// Zero-frequency symbols are a typed error at the same position from
    /// the fast loop, the careful loop, and the scan — in both the
    /// branchless group and the careful tail.
    #[test]
    fn zero_frequency_is_typed_and_position_exact() {
        // Model built without byte 200 anywhere.
        let data = sample(10_000, 5)
            .iter()
            .map(|&b| b % 100)
            .collect::<Vec<_>>();
        let p = provider(&data, 11);
        for poison_at in [7usize, 40, 9_990] {
            let mut poisoned = data.clone();
            poisoned[poison_at] = 200;
            let expect = RansError::ZeroFrequency {
                pos: poison_at as u64,
                sym: 200,
            };
            let mut states = vec![INITIAL_STATE; 32];
            let mut words = Vec::new();
            assert_eq!(
                encode_span(&p, &poisoned, 0, &mut states, &mut words, 0, &mut NullSink),
                Err(expect.clone()),
                "fast, poison at {poison_at}"
            );
            let mut states = vec![INITIAL_STATE; 32];
            let mut words = Vec::new();
            assert_eq!(
                encode_span_careful(&p, &poisoned, 0, &mut states, &mut words, 0, &mut NullSink),
                Err(expect.clone()),
                "careful, poison at {poison_at}"
            );
            let mut states = vec![INITIAL_STATE; 32];
            assert_eq!(
                scan_span(&p, &poisoned, 0, &mut states, 0, &mut NullSink),
                Err(expect),
                "scan, poison at {poison_at}"
            );
        }
    }

    /// Encode with the fast engine, decode with the fast decode engine:
    /// the two branchless paths round-trip through each other.
    #[test]
    fn fast_encode_round_trips_through_fast_decode() {
        for ways in [1usize, 32] {
            let data = sample(30_000, 21);
            let p = provider(&data, 11);
            let mut states = vec![INITIAL_STATE; ways];
            let mut words = Vec::new();
            encode_span(&p, &data, 0, &mut states, &mut words, 0, &mut NullSink).unwrap();

            let next = (!words.is_empty()).then(|| words.len() as u64 - 1);
            let mut out = vec![0u8; data.len()];
            crate::fast::decode_span(&p, &words, next, &mut states, 0, &mut out).unwrap();
            assert_eq!(out, data, "ways={ways}");
        }
    }
}
